//! The **sealed read path**: arena-compacted SoA snapshots of converged
//! slice subtrees.
//!
//! QUASII's premise (paper §5) is that the index *converges*: after a
//! warm-up of cracking queries every slice reaches its level's τ and queries
//! become pure reads. The adaptive machinery is pure overhead from then on —
//! heap-scattered [`Slice`] nodes behind `children: Vec<Slice>` (a `Slice<3>`
//! is well over a cache line), `&mut` access that forces batch parallelism
//! onto disjoint partitions, and a bottom-level scan striding 56-byte
//! records for a test that only consumes `2 × D` coordinates.
//!
//! A [`SealedRegion`] compacts one **converged top-level slice**'s subtree
//! into a flat arena:
//!
//! * per level, sibling metadata split for its two access patterns — a
//!   `key_lo[]` column for the extended binary search of §5.2 (an 8-byte
//!   probe stride instead of a >100-byte `Slice` stride) and a packed
//!   one-cache-line [`NodeMeta`] blob (record range, child range, bounding
//!   box) for everything the candidate loop reads after a probe hits;
//! * the bottom level's record MBBs split into per-dimension `lo[d][]` /
//!   negated `hi[d][]` columns plus a narrowed `u32` id column, so the
//!   final intersection filter streams one or two narrow lanes (cf. Pirk
//!   et al., "Database Cracking: Fancy Scan, Not Poor Man's Sort!", DaMoN
//!   2014) instead of striding 56-byte records — and the leaf's exact
//!   bounding box decides most lane tests wholesale (see
//!   [`SealedRegion::walk`]).
//!
//! # One blob per region — position independence
//!
//! Since the snapshot work (`crate::persist`), a region's columns are not
//! separate `Vec`s but **offset-indexed views into one contiguous,
//! 8-byte-aligned byte blob** held behind `Arc<AlignedBytes>`:
//!
//! ```text
//! u64 m                  record count
//! u64 L                  level count (== D - 1; tree levels 1..D)
//! L × u64                node count per level
//! per level l:           f64 key_lo[n_l] ; NodeMeta<D> meta[n_l]
//! u32 ids[m]             (padded to 8 bytes)
//! D × f64 rec_lo[d][m]   record MBB lower corners, per dimension
//! D × f64 rec_nhi[d][m]  record MBB upper corners, negated
//! ```
//!
//! Every section offset is derived from `(m, counts)` alone, so the blob is
//! **position-independent**: [`SealedRegion::from_blob`] revives a region at
//! any 8-aligned base inside any buffer without copying a column — this is
//! what lets a snapshot file hold every region back-to-back and the loader
//! hand each region a borrow of the single mapped buffer. Scalars are
//! host-endian in memory (live sealing must work on any host); the persist
//! layer pins the *on-disk* format to little-endian by refusing to write or
//! load on big-endian hosts. `from_blob` is total: it validates alignment,
//! exact length, and every node's record/child ranges before the first
//! unsafe cast, returning `Err` on any malformed input.
//!
//! The arena is a **self-contained copy** — it borrows nothing from the
//! data array or the slice tree, so sealed regions can be read through
//! `&self` from any number of threads while unrelated parts of the index
//! crack on. The slice tree stays in place as the source of truth (cracking
//! a region is impossible once converged, but the tree still serves
//! `validate`, `level_profile`, introspection and the fallback `&mut`
//! path); invalidating a seal parks the arena for O(1) revival at the next
//! sweep — a converged subtree can never go stale.
//!
//! [`SealedRegion::run`] reproduces, operation for operation, the traversal
//! the engine's `query_level`/`descend` would perform over the same
//! converged subtree — same partition-point probe, same "step one back"
//! rule, same break/skip conditions, same bottom-level scan order — so its
//! output is **byte-identical** to the unsealed engine's (`tests/sealed.rs`
//! proves it property-based, with the sealing-disabled engine as oracle).

use crate::persist::AlignedBytes;
use crate::simd::{self, SimdLevel};
use crate::slice::Slice;
use quasii_common::geom::{Aabb, Record};
use std::sync::Arc;

/// Per-node payload of one arena level: everything the candidate loop
/// touches *after* the binary search hits — record range, child range and
/// bounding box — packed into one contiguous blob (a single cache line at
/// `D = 3`), so classifying a candidate costs one line instead of one per
/// column. Only the minimum-key column stays split out: it is the probe
/// target of the extended binary search, where the 8-byte stride matters.
///
/// `repr(C)` pins the layout to `4 × u32` then `2 × [f64; D]` — `16 + 16·D`
/// bytes, 8-aligned, no padding, every bit pattern a valid value — so a
/// `&[NodeMeta<D>]` can be cast zero-copy out of an 8-aligned region blob.
#[derive(Clone, Copy, Debug)]
#[repr(C)]
pub(crate) struct NodeMeta<const D: usize> {
    /// Bounding-box lower corner.
    pub bb_lo: [f64; D],
    /// Bounding-box upper corner.
    pub bb_hi: [f64; D],
    /// First record (region-relative).
    pub begin: u32,
    /// Past-the-end record (region-relative).
    pub end: u32,
    /// Children occupy `child_start..child_end` in the next level's arrays
    /// (both `0` on the bottom level).
    pub child_start: u32,
    /// Past-the-end child index.
    pub child_end: u32,
}

/// Offsets (relative to the blob base) of one arena level's two columns.
#[derive(Clone, Copy, Debug)]
struct LevelView {
    /// Byte offset of the `f64` minimum-key column.
    key_lo: usize,
    /// Byte offset of the packed [`NodeMeta`] column.
    meta: usize,
    /// Number of slices at this level.
    len: usize,
}

/// Section offsets of a region blob, all relative to the blob base and all
/// derived purely from `(m, per-level node counts)` — the shared source of
/// truth for the writer ([`SealedRegion::build`]) and the reviver
/// ([`SealedRegion::from_blob`]).
struct BlobLayout {
    /// Total blob length in bytes (8-aligned).
    len: usize,
    levels: Vec<LevelView>,
    ids: usize,
    rec_lo: usize,
    rec_nhi: usize,
}

impl BlobLayout {
    /// Computes the layout with checked arithmetic; `None` means the sizes
    /// overflow (only reachable from hostile snapshot headers).
    fn compute<const D: usize>(m: u64, counts: &[u64]) -> Option<Self> {
        let meta_sz = 16 + 16 * D as u64;
        let mut off = 16u64.checked_add(8 * counts.len() as u64)?;
        let mut levels = Vec::with_capacity(counts.len());
        for &n in counts {
            let key_lo = off;
            off = off.checked_add(n.checked_mul(8)?)?;
            let meta = off;
            off = off.checked_add(n.checked_mul(meta_sz)?)?;
            levels.push(LevelView {
                key_lo: usize::try_from(key_lo).ok()?,
                meta: usize::try_from(meta).ok()?,
                len: usize::try_from(n).ok()?,
            });
        }
        let ids = usize::try_from(off).ok()?;
        off = off.checked_add(m.checked_mul(4)?)?;
        off = off.checked_add(off.wrapping_neg() % 8)?; // pad ids to 8
        let col = m.checked_mul(8)?;
        let rec_lo = usize::try_from(off).ok()?;
        off = off.checked_add(col.checked_mul(D as u64)?)?;
        let rec_nhi = usize::try_from(off).ok()?;
        off = off.checked_add(col.checked_mul(D as u64)?)?;
        Some(Self {
            len: usize::try_from(off).ok()?,
            levels,
            ids,
            rec_lo,
            rec_nhi,
        })
    }
}

fn put_u32(dst: &mut [u8], off: &mut usize, v: u32) {
    dst[*off..*off + 4].copy_from_slice(&v.to_ne_bytes());
    *off += 4;
}

fn put_u64(dst: &mut [u8], off: &mut usize, v: u64) {
    dst[*off..*off + 8].copy_from_slice(&v.to_ne_bytes());
    *off += 8;
}

fn put_f64(dst: &mut [u8], off: &mut usize, v: f64) {
    dst[*off..*off + 8].copy_from_slice(&v.to_ne_bytes());
    *off += 8;
}

fn read_u64(b: &[u8], off: usize) -> u64 {
    u64::from_ne_bytes(b[off..off + 8].try_into().unwrap())
}

/// Chunk size of the masked fallback scan (only reached at `D > 4`): each
/// lane's compare pass runs at most this many contiguous elements before
/// the mask is consumed — small enough to stay in L1, large enough to
/// vectorize.
const SCAN_CHUNK: usize = 64;

/// One converged top-level slice, compacted into a flat arena (see the
/// module docs for the blob layout and the byte-identity contract).
///
/// Cloning is cheap-ish: the blob itself is shared (`Arc`), only the small
/// level-view table is copied.
#[derive(Clone, Debug)]
pub(crate) struct SealedRegion<const D: usize> {
    /// First data-array index covered (the sealed root slice's `begin`).
    pub begin: usize,
    /// Past-the-end data-array index covered.
    pub end: usize,
    /// The backing buffer — either this region's private blob (live
    /// sealing) or a whole snapshot shared by every reloaded region.
    buf: Arc<AlignedBytes>,
    /// Blob base offset within `buf`, always 8-aligned.
    base: usize,
    /// Blob length in bytes.
    blob_len: usize,
    /// Per-level column offsets for absolute tree levels `1..D`
    /// (`levels[l - 1]` holds level `l`). Empty when `D == 1` — the region
    /// root is then itself the bottom level.
    levels: Vec<LevelView>,
    ids: usize,
    rec_lo: usize,
    rec_nhi: usize,
}

impl<const D: usize> SealedRegion<D> {
    /// Compacts `root`'s subtree, or returns `None` when the subtree has
    /// not converged (some slice unrefined, or a refined non-bottom slice
    /// without materialized children — its first visit would still mutate
    /// the tree) or is too large for the `u32` arena offsets.
    pub fn build(root: &Slice<D>, data: &[Record<D>]) -> Option<Self> {
        if !root.subtree_converged() || root.len() > u32::MAX as usize {
            return None;
        }
        if data[root.begin..root.end]
            .iter()
            .any(|r| r.id > u32::MAX as u64)
        {
            return None; // id column would not narrow — leave unsealed
        }
        let (begin, end) = (root.begin, root.end);
        let mut tmp: Vec<(Vec<f64>, Vec<NodeMeta<D>>)> = Vec::with_capacity(D.saturating_sub(1));
        let mut frontier: Vec<&Slice<D>> = root.children.iter().collect();
        while !frontier.is_empty() {
            let bottom = frontier[0].level + 1 == D;
            let mut key_lo = Vec::with_capacity(frontier.len());
            let mut meta = Vec::with_capacity(frontier.len());
            let mut next: Vec<&Slice<D>> = Vec::new();
            for s in &frontier {
                key_lo.push(s.key_lo);
                let child_start = next.len() as u32;
                if !bottom {
                    next.extend(s.children.iter());
                }
                meta.push(NodeMeta {
                    bb_lo: s.bbox.lo,
                    bb_hi: s.bbox.hi,
                    begin: (s.begin - begin) as u32,
                    end: (s.end - begin) as u32,
                    child_start,
                    child_end: next.len() as u32,
                });
            }
            tmp.push((key_lo, meta));
            frontier = next;
        }
        let m = end - begin;
        let counts: Vec<u64> = tmp.iter().map(|(k, _)| k.len() as u64).collect();
        let layout =
            BlobLayout::compute::<D>(m as u64, &counts).expect("live arena sizes fit in memory");
        let mut blob = AlignedBytes::zeroed(layout.len);
        let bytes = blob.as_bytes_mut();
        let mut off = 0usize;
        put_u64(bytes, &mut off, m as u64);
        put_u64(bytes, &mut off, counts.len() as u64);
        for &c in &counts {
            put_u64(bytes, &mut off, c);
        }
        for (lv, (key_lo, meta)) in layout.levels.iter().zip(&tmp) {
            let mut o = lv.key_lo;
            for &k in key_lo {
                put_f64(bytes, &mut o, k);
            }
            let mut o = lv.meta;
            for nm in meta {
                for d in 0..D {
                    put_f64(bytes, &mut o, nm.bb_lo[d]);
                }
                for d in 0..D {
                    put_f64(bytes, &mut o, nm.bb_hi[d]);
                }
                put_u32(bytes, &mut o, nm.begin);
                put_u32(bytes, &mut o, nm.end);
                put_u32(bytes, &mut o, nm.child_start);
                put_u32(bytes, &mut o, nm.child_end);
            }
        }
        let seg = &data[begin..end];
        let mut o = layout.ids;
        for r in seg {
            put_u32(bytes, &mut o, r.id as u32);
        }
        for d in 0..D {
            let mut o = layout.rec_lo + d * m * 8;
            for r in seg {
                put_f64(bytes, &mut o, r.mbb.lo[d]);
            }
            let mut o = layout.rec_nhi + d * m * 8;
            for r in seg {
                put_f64(bytes, &mut o, -r.mbb.hi[d]);
            }
        }
        let len = layout.len;
        Some(
            Self::from_blob(begin, end, Arc::new(blob), 0, len)
                .expect("freshly built seal blob parses"),
        )
    }

    /// Revives a region from `len` blob bytes at `base` inside `buf` —
    /// zero-copy: the region's columns stay borrows of `buf`. Total over
    /// arbitrary input: alignment, exact length, and every node's
    /// record/child ranges are validated *before* any column is read, so a
    /// malformed blob yields `Err`, never a panic or out-of-bounds view.
    pub fn from_blob(
        begin: usize,
        end: usize,
        buf: Arc<AlignedBytes>,
        base: usize,
        len: usize,
    ) -> Result<Self, String> {
        if !base.is_multiple_of(8) {
            return Err(format!("blob base {base} is not 8-aligned"));
        }
        if base.checked_add(len).is_none_or(|e| e > buf.len()) {
            return Err(format!(
                "blob {base}+{len} exceeds buffer of {} bytes",
                buf.len()
            ));
        }
        let bytes = &buf.as_bytes()[base..base + len];
        if len < 16 {
            return Err(format!("blob of {len} bytes is shorter than its header"));
        }
        let m = read_u64(bytes, 0);
        let l = read_u64(bytes, 8);
        if end < begin || (end - begin) as u64 != m {
            return Err(format!(
                "record count {m} does not match region {begin}..{end}"
            ));
        }
        if m > u32::MAX as u64 {
            return Err(format!("record count {m} exceeds the u32 arena limit"));
        }
        if l != (D - 1) as u64 {
            return Err(format!("level count {l}, expected {} for D = {D}", D - 1));
        }
        let l = l as usize;
        if len < 16 + 8 * l {
            return Err("blob too short for its level-count table".into());
        }
        let counts: Vec<u64> = (0..l).map(|i| read_u64(bytes, 16 + 8 * i)).collect();
        let layout = BlobLayout::compute::<D>(m, &counts)
            .ok_or_else(|| "blob section sizes overflow".to_string())?;
        if layout.len != len {
            return Err(format!(
                "blob length {len} does not match the {} bytes implied by its header",
                layout.len
            ));
        }
        let region = Self {
            begin,
            end,
            buf,
            base,
            blob_len: len,
            levels: layout.levels,
            ids: layout.ids,
            rec_lo: layout.rec_lo,
            rec_nhi: layout.rec_nhi,
        };
        for li in 0..l {
            let next = if li + 1 < l { counts[li + 1] } else { 0 };
            for (i, nm) in region.meta(li).iter().enumerate() {
                if nm.begin > nm.end || nm.end as u64 > m {
                    return Err(format!(
                        "level {li} node {i}: record range {}..{} outside 0..{m}",
                        nm.begin, nm.end
                    ));
                }
                if nm.child_start > nm.child_end || nm.child_end as u64 > next {
                    return Err(format!(
                        "level {li} node {i}: child range {}..{} outside 0..{next}",
                        nm.child_start, nm.child_end
                    ));
                }
            }
        }
        Ok(region)
    }

    /// The raw blob bytes — what the snapshot writer copies verbatim (the
    /// blob is position-independent, see the module docs).
    pub fn blob(&self) -> &[u8] {
        &self.buf.as_bytes()[self.base..self.base + self.blob_len]
    }

    /// Casts `n` f64s at blob-relative offset `rel`.
    ///
    /// Sound because construction ([`Self::from_blob`]) proved every stored
    /// offset 8-aligned (8-aligned base + 8-multiple sections over an
    /// 8-aligned [`AlignedBytes`]) and in-bounds (exact-length check), the
    /// buffer is immutable behind `Arc`, and `f64` admits any bit pattern.
    fn f64s(&self, rel: usize, n: usize) -> &[f64] {
        let off = self.base + rel;
        debug_assert!(off.is_multiple_of(8) && off + n * 8 <= self.buf.len());
        unsafe { std::slice::from_raw_parts(self.buf.as_bytes().as_ptr().add(off).cast(), n) }
    }

    /// Number of tree levels below the region root (`D - 1`; `0` at D = 1).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The minimum-key binary-search column of arena level `l` (absolute
    /// tree level `l + 1`).
    pub fn key_lo(&self, l: usize) -> &[f64] {
        let lv = &self.levels[l];
        self.f64s(lv.key_lo, lv.len)
    }

    /// The packed node payloads of arena level `l`, aligned with
    /// [`key_lo`](Self::key_lo). Same soundness argument as [`Self::f64s`]:
    /// `NodeMeta` is `repr(C)`, 8-aligned, padding-free, any-bit-valid.
    pub fn meta(&self, l: usize) -> &[NodeMeta<D>] {
        debug_assert_eq!(std::mem::size_of::<NodeMeta<D>>(), 16 + 16 * D);
        let lv = &self.levels[l];
        let off = self.base + lv.meta;
        debug_assert!(off.is_multiple_of(8) && off + lv.len * (16 + 16 * D) <= self.buf.len());
        unsafe { std::slice::from_raw_parts(self.buf.as_bytes().as_ptr().add(off).cast(), lv.len) }
    }

    /// Record ids over `begin..end`, region-relative order, narrowed to
    /// `u32` (ids are positions in the original dataset, so they fit for
    /// any dataset under 2³² records; a region holding a larger id is
    /// simply never sealed).
    pub fn ids(&self) -> &[u32] {
        let off = self.base + self.ids;
        let n = self.end - self.begin;
        debug_assert!(off.is_multiple_of(4) && off + n * 4 <= self.buf.len());
        unsafe { std::slice::from_raw_parts(self.buf.as_bytes().as_ptr().add(off).cast(), n) }
    }

    /// Record MBB lower corners of dimension `d`.
    pub fn rec_lo(&self, d: usize) -> &[f64] {
        let m = self.end - self.begin;
        self.f64s(self.rec_lo + d * m * 8, m)
    }

    /// Record MBB upper corners of dimension `d`, **negated**
    /// (`rec_nhi(d)[p] == -hi[d]` of record `p`). Negation normalizes both
    /// intersection half-tests to one shape — `rec_lo <= q.hi` and
    /// `rec_hi >= q.lo ⇔ -rec_hi <= -q.lo` — so every bottom-level lane
    /// pass is the same `lane[p] <= bound` loop (negation is exact for
    /// every non-NaN float, so the truth table is unchanged).
    pub fn rec_nhi(&self, d: usize) -> &[f64] {
        let m = self.end - self.begin;
        self.f64s(self.rec_nhi + d * m * 8, m)
    }

    /// Number of records covered.
    pub fn records(&self) -> usize {
        self.end - self.begin
    }

    /// Bytes reachable from this region (the blob plus the level-view
    /// table). Reloaded regions share one snapshot buffer; each still
    /// reports its own blob span, so the sum over regions stays the
    /// arena-payload total, not the buffer size times the region count.
    pub fn heap_bytes(&self) -> usize {
        self.blob_len + self.levels.capacity() * std::mem::size_of::<LevelView>()
    }

    /// Emits every id in the region (the caller proved `q` contains the
    /// region root's bounding box, so the whole subtree qualifies — one
    /// contiguous copy instead of a per-leaf walk). Returns the objects
    /// "tested" (all of them — the bbox proof decided each record's test).
    pub fn emit_all(&self, out: &mut Vec<u64>) -> u64 {
        let ids = self.ids();
        out.extend(ids.iter().map(|&id| id as u64));
        ids.len() as u64
    }

    /// Answers `q` over the region, appending matching ids to `out` in
    /// data-array order; returns the number of objects tested at the bottom
    /// level (the engine's `objects_tested` contribution). The caller has
    /// already applied the root-level checks (`key_lo` window and bounding
    /// box) to the region's root slice, exactly as `query_level` does
    /// before descending a refined top-level slice (and takes
    /// [`emit_all`](Self::emit_all) when `q` contains the root box).
    /// `level` selects the lane-test kernel generation (see
    /// [`crate::simd`]); results are identical for every level.
    pub fn run(&self, q: &Aabb<D>, qe: &Aabb<D>, out: &mut Vec<u64>, level: SimdLevel) -> u64 {
        if self.levels.is_empty() {
            // D == 1: the region root is the bottom level.
            self.scan_range(0, self.records(), q, [true; D], [true; D], out, level)
        } else {
            self.walk(0, 0, self.levels[0].len, q, qe, out, level)
        }
    }

    /// Visits one sibling window `lo..hi` of arena level `idx` (absolute
    /// level `idx + 1`), reproducing `query_level`'s candidate selection —
    /// the partition-point probe on the minimum-key column with the "step
    /// one back" rule, the sorted-key break, and the bounding-box skip —
    /// with one shortcut the arena's exact boxes make sound: a node whose
    /// bounding box is *contained* in `q` emits its whole record range as a
    /// contiguous id copy (every descendant's box is inside the node's box,
    /// and a record inside `q`'s interval on a dimension passes that
    /// dimension's intersection test by construction), which is exactly the
    /// id sequence, order, and tested count the full descent would produce.
    #[allow(clippy::too_many_arguments)]
    fn walk(
        &self,
        idx: usize,
        lo: usize,
        hi: usize,
        q: &Aabb<D>,
        qe: &Aabb<D>,
        out: &mut Vec<u64>,
        level: SimdLevel,
    ) -> u64 {
        let key_col = self.key_lo(idx);
        let metas = self.meta(idx);
        let dim = idx + 1;
        let bottom = dim + 1 == D;
        let keys = &key_col[lo..hi];
        let start = lo + keys.partition_point(|&k| k < qe.lo[dim]).saturating_sub(1);
        let mut tested = 0u64;
        // Bottom-level run fusion: consecutive leaves that are contiguous in
        // record space and need the *same* lane tests collapse into one scan
        // call (one resize, one lane-loop setup) — per-leaf emission order
        // and per-record results are unchanged, a skipped leaf in between
        // breaks contiguity and flushes.
        let mut run: Option<(usize, usize, [bool; D], [bool; D])> = None;
        for i in start..hi {
            if key_col[i] > qe.hi[dim] {
                break;
            }
            // One fused pass over the node's packed bbox classifies it:
            // disjoint from `q` (skip), contained in `q` (wholesale emit),
            // or boundary (descend / scan only the undecided lanes).
            let node = &metas[i];
            let mut intersects = true;
            let mut test_lo = [false; D];
            let mut test_hi = [false; D];
            for d in 0..D {
                let (blo, bhi) = (node.bb_lo[d], node.bb_hi[d]);
                intersects &= blo <= q.hi[d];
                intersects &= bhi >= q.lo[d];
                // A record fails `rec_lo <= q.hi` only if its lower corner
                // exceeds q.hi — impossible when the node's upper bound
                // already fits under it; dually for the other side.
                test_lo[d] = bhi > q.hi[d];
                test_hi[d] = blo < q.lo[d];
            }
            if !intersects {
                continue;
            }
            let undecided = (0..D).any(|d| test_lo[d] || test_hi[d]);
            let (rb, re) = (node.begin as usize, node.end as usize);
            if bottom {
                if !undecided {
                    // Contained leaf: lane-test-free (scan_range's k == 0
                    // wholesale-copy path once the run flushes).
                    (test_lo, test_hi) = ([false; D], [false; D]);
                }
                match &mut run {
                    Some((_, pe, plo, phi)) if *pe == rb && *plo == test_lo && *phi == test_hi => {
                        *pe = re;
                    }
                    _ => {
                        if let Some((pb, pe, plo, phi)) = run.take() {
                            tested += self.scan_range(pb, pe, q, plo, phi, out, level);
                        }
                        run = Some((rb, re, test_lo, test_hi));
                    }
                }
            } else if !undecided {
                out.extend(self.ids()[rb..re].iter().map(|&id| id as u64));
                tested += (re - rb) as u64;
            } else {
                let (clo, chi) = (node.child_start as usize, node.child_end as usize);
                tested += self.walk(idx + 1, clo, chi, q, qe, out, level);
            }
        }
        if let Some((pb, pe, plo, phi)) = run {
            tested += self.scan_range(pb, pe, q, plo, phi, out, level);
        }
        tested
    }

    /// Bottom-level scan of records `b..e` (region-relative), testing only
    /// the **undecided** lanes — the caller's bbox classification proves the
    /// skipped lanes pass for every record, and the negated upper-bound
    /// column makes every remaining test the uniform `lane[p] <= bound`.
    /// Truth table and output order are identical to the engine's
    /// per-record [`Aabb::intersects_branchless`] collect — this is its
    /// "fancy scan" form: a boundary leaf usually crosses the query on one
    /// or two dimensions, so the scan streams one or two narrow `f64`
    /// lanes plus the id column instead of striding 56-byte records.
    #[allow(clippy::too_many_arguments)]
    fn scan_range(
        &self,
        b: usize,
        e: usize,
        q: &Aabb<D>,
        test_lo: [bool; D],
        test_hi: [bool; D],
        out: &mut Vec<u64>,
        level: SimdLevel,
    ) -> u64 {
        let m = e - b;
        // Gather the active lane tests in normalized `v <= bound` form.
        // `2 × D` tests fit `MAX_LANES` for every practical dimensionality;
        // beyond that the masked chunk loop below takes over.
        const MAX_LANES: usize = 8;
        let empty: &[f64] = &[];
        let mut lanes: [&[f64]; MAX_LANES] = [empty; MAX_LANES];
        let mut bounds = [0.0f64; MAX_LANES];
        let mut k = 0usize;
        let mut overflow = false;
        for d in 0..D {
            if test_lo[d] {
                if k < MAX_LANES {
                    lanes[k] = &self.rec_lo(d)[b..e];
                    bounds[k] = q.hi[d];
                    k += 1;
                } else {
                    overflow = true;
                }
            }
            if test_hi[d] {
                if k < MAX_LANES {
                    lanes[k] = &self.rec_nhi(d)[b..e];
                    bounds[k] = -q.lo[d];
                    k += 1;
                } else {
                    overflow = true;
                }
            }
        }
        let all_ids = self.ids();
        if k == 0 {
            out.extend(all_ids[b..e].iter().map(|&id| id as u64));
            return m as u64;
        }
        let start = out.len();
        out.resize(start + m, 0);
        let ids = &all_ids[b..e];
        let mut w = start;
        if overflow {
            // More than MAX_LANES active tests (D > 4): masked chunk pass
            // over every active lane.
            let mut mask = [true; SCAN_CHUNK];
            let mut base = 0usize;
            while base < m {
                let c = SCAN_CHUNK.min(m - base);
                mask[..c].fill(true);
                for d in 0..D {
                    if test_lo[d] {
                        let qhi = q.hi[d];
                        let lane = &self.rec_lo(d)[b + base..b + base + c];
                        for (mk, &v) in mask[..c].iter_mut().zip(lane) {
                            *mk &= v <= qhi;
                        }
                    }
                    if test_hi[d] {
                        let nqlo = -q.lo[d];
                        let lane = &self.rec_nhi(d)[b + base..b + base + c];
                        for (mk, &v) in mask[..c].iter_mut().zip(lane) {
                            *mk &= v <= nqlo;
                        }
                    }
                }
                for (j, &mk) in mask[..c].iter().enumerate() {
                    out[w] = ids[base + j] as u64;
                    w += mk as usize;
                }
                base += c;
            }
        } else {
            // Fused lane tests for the common lane counts, dispatched through
            // [`crate::simd::scan_emit`]: the vector kernels run the `v <=
            // bound` compares four records wide, AND the masks across active
            // lanes and left-pack the surviving ids; the scalar generation is
            // the original predicated loop. Emission order is the id order
            // either way, so the output is byte-identical across levels.
            match k {
                1 => {
                    w = start
                        + simd::scan_emit::<1>(
                            level,
                            ids,
                            [lanes[0]],
                            [bounds[0]],
                            &mut out[start..],
                        );
                }
                2 => {
                    w = start
                        + simd::scan_emit::<2>(
                            level,
                            ids,
                            [lanes[0], lanes[1]],
                            [bounds[0], bounds[1]],
                            &mut out[start..],
                        );
                }
                3 => {
                    w = start
                        + simd::scan_emit::<3>(
                            level,
                            ids,
                            [lanes[0], lanes[1], lanes[2]],
                            [bounds[0], bounds[1], bounds[2]],
                            &mut out[start..],
                        );
                }
                _ => {
                    for (p, &id) in ids.iter().enumerate() {
                        let mut ok = true;
                        for t in 0..k {
                            ok &= lanes[t][p] <= bounds[t];
                        }
                        out[w] = id as u64;
                        w += ok as usize;
                    }
                }
            }
        }
        out.truncate(w);
        m as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Quasii, QuasiiConfig};
    use quasii_common::dataset::uniform_boxes_in;
    use quasii_common::index::SpatialIndex;

    /// Finalizes a small index and seals by hand, comparing the arena
    /// traversal against the engine's own answers.
    #[test]
    fn build_and_run_match_engine() {
        let data = uniform_boxes_in::<3>(2_000, 100.0, 5);
        let mut idx = Quasii::new(data.clone(), QuasiiConfig::with_tau(8).with_seal(false));
        idx.finalize();
        let (arr, _, roots, _, _) = idx.raw_parts();
        let regions: Vec<SealedRegion<3>> = roots
            .iter()
            .map(|s| SealedRegion::build(s, arr).expect("finalized trees seal"))
            .collect();
        assert_eq!(
            regions.iter().map(SealedRegion::records).sum::<usize>(),
            data.len()
        );
        for r in &regions {
            assert!(r.heap_bytes() > 0);
        }

        let queries = [
            Aabb::new([0.0; 3], [100.0; 3]),
            Aabb::new([10.0; 3], [35.0; 3]),
            Aabb::new([90.0; 3], [99.0; 3]),
            Aabb::point([50.0; 3]),
            Aabb::new([200.0; 3], [300.0; 3]),
        ];
        for q in &queries {
            let expect = idx.query_collect(q);
            let qe = idx.extend_query(q);
            let mut got = Vec::new();
            let (arr2, _, roots, _, _) = idx.raw_parts();
            for (s, r) in roots.iter().zip(&regions) {
                assert_eq!((s.begin, s.end), (r.begin, r.end));
                if s.key_lo > qe.hi[0] {
                    break;
                }
                if q.intersects(&s.bbox) {
                    r.run(q, &qe, &mut got, SimdLevel::detect());
                }
            }
            let _ = arr2;
            assert_eq!(got, expect, "query {q:?}");
        }
    }

    /// The blob roundtrip is the identity: re-parsing a built region's blob
    /// at a different base inside a larger buffer reads back the same
    /// columns (position independence).
    #[test]
    fn blob_reparses_at_a_shifted_base() {
        let data = uniform_boxes_in::<3>(500, 50.0, 11);
        let mut idx = Quasii::new(data, QuasiiConfig::with_tau(8).with_seal(false));
        idx.finalize();
        let (arr, _, roots, _, _) = idx.raw_parts();
        let r = SealedRegion::build(&roots[0], arr).expect("finalized trees seal");
        let blob = r.blob();
        let shift = 64usize;
        let mut shifted = AlignedBytes::zeroed(shift + blob.len());
        shifted.as_bytes_mut()[shift..].copy_from_slice(blob);
        let r2 = SealedRegion::<3>::from_blob(r.begin, r.end, Arc::new(shifted), shift, blob.len())
            .expect("shifted blob parses");
        assert_eq!(r.ids(), r2.ids());
        assert_eq!(r.level_count(), r2.level_count());
        for l in 0..r.level_count() {
            assert_eq!(r.key_lo(l), r2.key_lo(l));
        }
        for d in 0..3 {
            assert_eq!(r.rec_lo(d), r2.rec_lo(d));
            assert_eq!(r.rec_nhi(d), r2.rec_nhi(d));
        }
    }

    /// Every truncation of a valid blob is rejected, never misread.
    #[test]
    fn truncated_blobs_are_rejected() {
        let data = uniform_boxes_in::<2>(200, 20.0, 3);
        let mut idx = Quasii::new(data, QuasiiConfig::with_tau(8).with_seal(false));
        idx.finalize();
        let (arr, _, roots, _, _) = idx.raw_parts();
        let r = SealedRegion::build(&roots[0], arr).expect("finalized trees seal");
        let blob = r.blob().to_vec();
        for cut in [0, 8, 15, 16, blob.len() / 2, blob.len() - 1] {
            let buf = Arc::new(AlignedBytes::copy_from(&blob[..cut]));
            assert!(
                SealedRegion::<2>::from_blob(r.begin, r.end, buf, 0, cut).is_err(),
                "truncation to {cut} bytes must not parse"
            );
        }
        // Wrong dimensionality: the level count no longer matches.
        let buf = Arc::new(AlignedBytes::copy_from(&blob));
        assert!(SealedRegion::<3>::from_blob(r.begin, r.end, buf, 0, blob.len()).is_err());
    }

    #[test]
    fn unconverged_subtrees_refuse_to_seal() {
        let data = uniform_boxes_in::<3>(2_000, 100.0, 6);
        let mut idx = Quasii::new(data, QuasiiConfig::with_tau(8).with_seal(false));
        // One tiny corner query leaves most of the tree unrefined.
        idx.query_collect(&Aabb::new([0.0; 3], [5.0; 3]));
        let (arr, _, roots, _, _) = idx.raw_parts();
        assert!(
            roots.iter().any(|s| SealedRegion::build(s, arr).is_none()),
            "a single corner query must not converge every top-level slice"
        );
    }
    #[test]
    #[ignore]
    fn profile_sealed_vs_unsealed() {
        use quasii_common::geom::mbb_of;
        use std::time::Instant;
        let n = 1_000_000;
        let data = uniform_boxes_in::<3>(n, 10_000.0, 7);
        let universe = mbb_of(&data);
        let mut queries = Vec::new();
        {
            let side = (universe.extent(0) * universe.extent(1) * universe.extent(2) * 1e-3).cbrt();
            let mut x = 123456789u64;
            let mut rnd = || {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64
            };
            for _ in 0..2000 {
                let lo = [
                    rnd() * (10_000.0 - side),
                    rnd() * (10_000.0 - side),
                    rnd() * (10_000.0 - side),
                ];
                queries.push(Aabb::new(lo, [lo[0] + side, lo[1] + side, lo[2] + side]));
            }
        }
        let mut sealed = Quasii::new(data.clone(), QuasiiConfig::default().with_threads(1));
        sealed.finalize();
        sealed.seal();
        let mut unsealed = Quasii::new(
            data.clone(),
            QuasiiConfig::default().with_threads(1).with_seal(false),
        );
        unsealed.finalize();
        for q in queries.iter().take(400) {
            let _ = sealed.query_collect(q);
            let _ = unsealed.query_collect(q);
        }
        let mut tu_all = Vec::new();
        let mut ts_all = Vec::new();
        for _ in 0..9 {
            let t = Instant::now();
            let mut h = 0usize;
            for q in &queries {
                h += unsealed.query_collect(q).len();
            }
            tu_all.push(t.elapsed().as_secs_f64());
            let t = Instant::now();
            let mut h2 = 0usize;
            for q in &queries {
                h2 += sealed.query_collect(q).len();
            }
            ts_all.push(t.elapsed().as_secs_f64());
            assert_eq!(h, h2);
        }
        tu_all.sort_by(f64::total_cmp);
        ts_all.sort_by(f64::total_cmp);
        println!("rep unsealed med {:.1}ms min {:.1}ms | sealed med {:.1}ms min {:.1}ms | ratio(med) {:.2} ratio(min) {:.2}",
        tu_all[4]*1e3, tu_all[0]*1e3, ts_all[4]*1e3, ts_all[0]*1e3, tu_all[4]/ts_all[4], tu_all[0]/ts_all[0]);
    }
}
