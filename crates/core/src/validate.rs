//! Structural invariant checking for the slice hierarchy. Not used on the
//! query path; tests and property tests call [`validate`] after every
//! operation to catch corruption early.
//!
//! Checked invariants:
//!
//! 1. sibling slices are sorted by data position and exactly partition their
//!    parent's range (no gaps, no overlap);
//! 2. levels increase by one per generation, never exceeding `D`;
//! 3. the cracking order holds: the maximum assignment key (on the level's
//!    dimension) of a sibling never exceeds the minimum of the next sibling,
//!    and each slice's recorded `key_lo` lower-bounds its keys;
//! 4. each slice's bounding box covers all its objects' MBBs;
//! 5. refined slices carry their *exact* MBB; unrefined slices exceed τ;
//! 6. only refined slices have children;
//! 7. no slice is empty;
//! 8. the column pair is in lockstep with the data: wherever an unrefined
//!    slice claims fresh columns (`keys_fresh`), `keys[i]` equals the
//!    record's own-level assignment key and `his[i]` its own-level upper
//!    coordinate over the slice's whole range (see `crate::keys`);
//! 9. every sealed region (see `crate::seal`) mirrors a converged top-level
//!    slice exactly: matching data range, level-by-level SoA metadata equal
//!    to the slice subtree, and record columns equal to the data array.

use crate::config::AssignBy;
use crate::crack::key_of;
use crate::keys::KeyColumn;
use crate::slice::Slice;
use crate::Quasii;
use quasii_common::geom::{Aabb, Record};

/// Runs all checks; `Err` describes the first violation.
pub(crate) fn validate<const D: usize>(index: &Quasii<D>) -> Result<(), String> {
    let (data, cols, roots, tau, mode) = index.raw_parts();
    if roots.is_empty() {
        return Ok(()); // pre-initialization or empty dataset
    }
    if !cols.is_built(data.len()) {
        return Err(format!(
            "column pair holds {} entries for {} records",
            cols.len(),
            data.len()
        ));
    }
    check_level(data, cols, roots, 0, 0, data.len(), tau, mode)?;
    check_seals(index)
}

/// Invariant 9: every sealed arena is an exact compaction of a converged
/// top-level slice.
fn check_seals<const D: usize>(index: &Quasii<D>) -> Result<(), String> {
    let (data, _, roots, _, _) = index.raw_parts();
    let mut prev_end = 0usize;
    for (k, region) in index.seal_regions().iter().enumerate() {
        if region.begin < prev_end {
            return Err(format!(
                "seal {k} starts at {} inside the previous region (ends {prev_end})",
                region.begin
            ));
        }
        prev_end = region.end;
        let Some(root) = roots
            .iter()
            .find(|s| s.begin == region.begin && s.end == region.end)
        else {
            return Err(format!(
                "seal {k} covers {}..{} which matches no top-level slice",
                region.begin, region.end
            ));
        };
        if !root.subtree_converged() {
            return Err(format!(
                "seal {k} covers an unconverged top-level slice {}..{}",
                region.begin, region.end
            ));
        }
        // Record columns mirror the data array.
        let seg = &data[region.begin..region.end];
        let ids = region.ids();
        if ids.len() != seg.len() {
            return Err(format!("seal {k}: id column length mismatch"));
        }
        for (p, r) in seg.iter().enumerate() {
            if ids[p] as u64 != r.id {
                return Err(format!(
                    "seal {k}: id column diverges at position {p} ({} vs {})",
                    ids[p], r.id
                ));
            }
            for d in 0..D {
                if region.rec_lo(d)[p] != r.mbb.lo[d] || region.rec_nhi(d)[p] != -r.mbb.hi[d] {
                    return Err(format!(
                        "seal {k}: MBB columns diverge at position {p}, dim {d}"
                    ));
                }
            }
        }
        // Level arrays mirror the subtree, breadth-first.
        let mut frontier: Vec<&Slice<D>> = root.children.iter().collect();
        for li in 0..region.level_count() {
            let key_lo = region.key_lo(li);
            let meta = region.meta(li);
            if key_lo.len() != frontier.len() {
                return Err(format!(
                    "seal {k}, level {li}: {} arena nodes vs {} slices",
                    key_lo.len(),
                    frontier.len()
                ));
            }
            let mut next: Vec<&Slice<D>> = Vec::new();
            let bottom = li + 2 == D;
            for (i, s) in frontier.iter().enumerate() {
                let node = &meta[i];
                let (b, e) = (node.begin as usize, node.end as usize);
                if key_lo[i] != s.key_lo || b != s.begin - region.begin || e != s.end - region.begin
                {
                    return Err(format!(
                        "seal {k}, level {li}, node {i}: metadata diverges from slice"
                    ));
                }
                if node.bb_lo != s.bbox.lo || node.bb_hi != s.bbox.hi {
                    return Err(format!(
                        "seal {k}, level {li}, node {i}: bbox diverges from slice"
                    ));
                }
                if !bottom {
                    let child_start = next.len() as u32;
                    next.extend(s.children.iter());
                    if node.child_start != child_start || node.child_end != next.len() as u32 {
                        return Err(format!(
                            "seal {k}, level {li}, node {i}: child range diverges"
                        ));
                    }
                } else if node.child_start != 0 || node.child_end != 0 {
                    return Err(format!(
                        "seal {k}, level {li}, node {i}: bottom node claims children"
                    ));
                }
            }
            frontier = next;
        }
        if !frontier.is_empty() {
            return Err(format!(
                "seal {k}: slice tree has more levels than the arena"
            ));
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn check_level<const D: usize>(
    data: &[Record<D>],
    cols: &KeyColumn,
    slices: &[Slice<D>],
    level: usize,
    begin: usize,
    end: usize,
    tau: &[usize; D],
    mode: AssignBy,
) -> Result<(), String> {
    if level >= D {
        return Err(format!("level {level} exceeds dimensionality {D}"));
    }
    let mut cursor = begin;
    let mut prev_max_key = f64::NEG_INFINITY;
    let mut prev_key_lo = f64::NEG_INFINITY;
    for (i, s) in slices.iter().enumerate() {
        if s.level != level {
            return Err(format!(
                "slice {i}: level {} but list expects {level}",
                s.level
            ));
        }
        if s.is_empty() {
            return Err(format!("slice {i} at level {level} is empty"));
        }
        if s.begin != cursor {
            return Err(format!(
                "gap/overlap at level {level}: slice {i} starts at {} expected {cursor}",
                s.begin
            ));
        }
        if s.end > end {
            return Err(format!(
                "slice {i} at level {level} overruns parent range ({} > {end})",
                s.end
            ));
        }
        cursor = s.end;

        // Cracking order across siblings (invariant 3).
        let seg = &data[s.begin..s.end];
        let min_key = seg
            .iter()
            .map(|r| key_of(r, level, mode))
            .fold(f64::INFINITY, f64::min);
        let max_key = seg
            .iter()
            .map(|r| key_of(r, level, mode))
            .fold(f64::NEG_INFINITY, f64::max);
        if min_key < prev_max_key {
            return Err(format!(
                "ordering violated at level {level}, slice {i}: min key {min_key} < previous max {prev_max_key}"
            ));
        }
        prev_max_key = prev_max_key.max(max_key);
        if s.key_lo > min_key {
            return Err(format!(
                "slice {i} at level {level}: recorded key_lo {} exceeds actual min key {min_key}",
                s.key_lo
            ));
        }
        if s.key_lo < prev_key_lo {
            return Err(format!(
                "slice {i} at level {level}: key_lo not sorted ({} < {prev_key_lo})",
                s.key_lo
            ));
        }
        prev_key_lo = s.key_lo;

        // Bounding-box coverage (invariant 4) and exactness (invariant 5).
        let mut exact = Aabb::empty();
        for r in seg {
            exact.expand(&r.mbb);
        }
        for k in 0..D {
            if exact.lo[k] < s.bbox.lo[k] || exact.hi[k] > s.bbox.hi[k] {
                return Err(format!(
                    "bbox of slice {i} at level {level} does not cover objects on dim {k}: \
                     box {:?} vs exact {:?}",
                    s.bbox, exact
                ));
            }
        }
        if s.refined && s.bbox != exact {
            return Err(format!(
                "refined slice {i} at level {level} has inexact bbox {:?} (exact {:?})",
                s.bbox, exact
            ));
        }
        if !s.refined && s.len() <= tau[level] {
            return Err(format!(
                "slice {i} at level {level} holds {} <= τ={} objects but is not refined",
                s.len(),
                tau[level]
            ));
        }

        // Column lockstep (invariant 8): an *unrefined* fresh slice's range
        // caches exactly its own-level assignment keys and upper bounds.
        // (The flag is meaningless on refined slices: descendants re-key
        // sub-ranges for deeper dimensions, and the engine never consults
        // it there — `refine` only ever runs on unrefined slices.)
        if s.keys_fresh && !s.refined {
            let keys = &cols.keys()[s.begin..s.end];
            let his = &cols.his()[s.begin..s.end];
            for (idx, ((k, h), r)) in keys.iter().zip(his).zip(seg).enumerate() {
                let want_k = key_of(r, level, mode);
                let want_h = r.mbb.hi[level];
                if *k != want_k || *h != want_h {
                    return Err(format!(
                        "column pair out of lockstep at level {level}, slice {i}, \
                         position {}: cached ({k}, {h}), expected ({want_k}, {want_h})",
                        s.begin + idx
                    ));
                }
            }
        }

        if !s.children.is_empty() {
            if !s.refined {
                return Err(format!("unrefined slice {i} at level {level} has children"));
            }
            check_level(
                data,
                cols,
                &s.children,
                level + 1,
                s.begin,
                s.end,
                tau,
                mode,
            )?;
        }
    }
    // Root list must cover the full dataset; inner lists their parent.
    if cursor != end {
        return Err(format!(
            "level {level} list covers up to {cursor}, expected {end}"
        ));
    }
    Ok(())
}
