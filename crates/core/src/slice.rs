//! The slice — QUASII's structural unit (paper §5.1, Fig. 3b/4).
//!
//! A slice at level `l` groups a contiguous range of the (physically
//! reorganized) data array whose objects were partitioned on dimension `l`
//! by their lower coordinate. Its four attributes from the paper map to
//! fields here: level (`level`), minimum bounding box (`bbox`), data-array
//! indices (`begin..end`), and sub-slice pointers (`children`).

use quasii_common::geom::{Aabb, Record};

/// One node of QUASII's d-level hierarchy.
#[derive(Clone, Debug)]
pub struct Slice<const D: usize> {
    /// Level = the dimension this slice was partitioned on (0-based).
    pub level: usize,
    /// First index (inclusive) into the data array.
    pub begin: usize,
    /// Last index (exclusive) into the data array.
    pub end: usize,
    /// Bounding information. Exact full MBB once [`refined`](Self::refined);
    /// before that, "open-ended": only dimensions `<= level` carry real
    /// bounds (inherited from the refined parent plus this level's crack),
    /// the rest may be infinite (paper §5.1).
    pub bbox: Aabb<D>,
    /// The value interval of assignment keys this slice was cut to on its
    /// own dimension — used for artificial midpoint refinement.
    pub cut_lo: f64,
    /// Upper end of the cut interval.
    pub cut_hi: f64,
    /// Minimum assignment key inside the slice (`-inf` until measured by a
    /// crack). Sibling lists are sorted by this value, which is what the
    /// extended binary search of §5.2 probes.
    pub key_lo: f64,
    /// Whether the slice reached its level's τ (or was force-finalized on a
    /// value-indivisible distribution) and `bbox` is its exact MBB.
    pub refined: bool,
    /// Whether the owning index's assignment-key column currently caches
    /// this slice's **own-level** keys over `begin..end`
    /// (`keys[i] == key_of(&data[i], level, mode)` — see [`crate::keys`]).
    /// Slices created by a crack are born fresh (the kernels keep the column
    /// in lockstep); default children span a range last keyed for their
    /// parent's level and are re-keyed lazily before their first crack.
    ///
    /// Only meaningful while the slice is unrefined (the only state
    /// `refine` cracks from): once refined, descendants re-key sub-ranges
    /// for deeper dimensions and this flag is never consulted again.
    pub keys_fresh: bool,
    /// Sub-slices at `level + 1`, sorted by `begin`, partitioning
    /// `begin..end`. Only ever non-empty on refined slices.
    pub children: Vec<Slice<D>>,
}

impl<const D: usize> Slice<D> {
    /// Number of objects in the slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.begin
    }

    /// Whether the slice covers no objects.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }

    /// Builds the initial whole-dataset slice (the paper's `s0`): level 0,
    /// exact dataset MBB (measured by the caller), unrefined unless the
    /// dataset already fits τ.
    pub fn root(n: usize, data_bounds: Aabb<D>, tau0: usize) -> Self {
        Self {
            level: 0,
            begin: 0,
            end: n,
            bbox: data_bounds,
            cut_lo: data_bounds.lo[0],
            cut_hi: data_bounds.hi[0],
            key_lo: f64::NEG_INFINITY,
            refined: n <= tau0,
            // First-query initialization builds the dimension-0 column in
            // the same pass that measures `data_bounds`.
            keys_fresh: true,
            children: Vec::new(),
        }
    }

    /// Creates the "default child" of a refined slice (paper Alg. 1 line 15):
    /// a single slice one level down spanning the same range. The parent is
    /// refined, so its `bbox` is exact and is inherited verbatim.
    pub fn default_child(&self, tau_child: usize) -> Self {
        debug_assert!(self.refined, "default children hang off refined slices");
        debug_assert!(self.level + 1 < D, "bottom level has no children");
        let l = self.level + 1;
        Self {
            level: l,
            begin: self.begin,
            end: self.end,
            bbox: self.bbox,
            cut_lo: self.bbox.lo[l],
            cut_hi: self.bbox.hi[l],
            key_lo: f64::NEG_INFINITY,
            refined: self.len() <= tau_child,
            // The range was last keyed for the parent's level; the child's
            // first crack re-keys it for level `l` (lazy per-level rebuild).
            keys_fresh: false,
            children: Vec::new(),
        }
    }

    /// Exact MBB of the slice's objects; used when a slice becomes refined.
    pub fn measure_exact(&mut self, data: &[Record<D>]) {
        let mut mbb = Aabb::empty();
        for r in &data[self.begin..self.end] {
            mbb.expand(&r.mbb);
        }
        self.bbox = mbb;
    }

    /// Recursive count of slices in this subtree (including `self`).
    pub fn count(&self) -> usize {
        1 + self.children.iter().map(Slice::count).sum::<usize>()
    }

    /// Whether this subtree has fully **converged**: every slice is refined
    /// down to the bottom level and every refined non-bottom slice has
    /// materialized children. A query through a converged subtree performs
    /// no reorganization and materializes nothing — it is a pure read,
    /// which is exactly the condition under which the subtree can be
    /// compacted into a sealed arena (see `crate::seal`). A refined
    /// non-bottom slice *without* children is not converged: its first
    /// visit still creates the default child (and may crack it, e.g. after
    /// a force-refinement above τ).
    pub fn subtree_converged(&self) -> bool {
        if !self.refined {
            return false;
        }
        if self.level + 1 == D {
            return true;
        }
        !self.children.is_empty() && self.children.iter().all(Self::subtree_converged)
    }

    /// Approximate heap bytes of this subtree's structure.
    pub fn heap_bytes(&self) -> usize {
        self.children.capacity() * std::mem::size_of::<Slice<D>>()
            + self.children.iter().map(Slice::heap_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_slice_mirrors_dataset() {
        let b = Aabb::new([0.0, 0.0], [10.0, 20.0]);
        let s = Slice::<2>::root(100, b, 60);
        assert_eq!(s.len(), 100);
        assert!(!s.refined);
        assert!(s.keys_fresh, "init builds the dim-0 column with the root");
        assert_eq!((s.cut_lo, s.cut_hi), (0.0, 10.0));
        let tiny = Slice::<2>::root(10, b, 60);
        assert!(tiny.refined);
    }

    #[test]
    fn default_child_inherits_exact_bbox() {
        let b = Aabb::new([0.0, 5.0], [10.0, 25.0]);
        let mut parent = Slice::<2>::root(50, b, 60);
        parent.refined = true;
        let child = parent.default_child(10);
        assert_eq!(child.level, 1);
        assert_eq!((child.begin, child.end), (0, 50));
        assert_eq!(child.bbox, b);
        assert_eq!((child.cut_lo, child.cut_hi), (5.0, 25.0));
        assert!(!child.refined, "50 > τ_child = 10");
        assert!(!child.keys_fresh, "range was keyed for the parent's level");
        let small_child = parent.default_child(60);
        assert!(small_child.refined);
    }

    #[test]
    fn measure_exact_shrinks_bbox() {
        let data = vec![
            Record::new(0, Aabb::new([2.0, 2.0], [3.0, 3.0])),
            Record::new(1, Aabb::new([4.0, 1.0], [5.0, 6.0])),
        ];
        let mut s = Slice::<2>::root(2, Aabb::new([0.0, 0.0], [100.0, 100.0]), 60);
        s.measure_exact(&data);
        assert_eq!(s.bbox, Aabb::new([2.0, 1.0], [5.0, 6.0]));
    }

    #[test]
    fn count_and_bytes_recurse() {
        let b = Aabb::new([0.0], [1.0]);
        let mut s = Slice::<1>::root(4, b, 60);
        assert_eq!(s.count(), 1);
        s.children.push(Slice::root(2, b, 60));
        s.children.push(Slice::root(2, b, 60));
        assert_eq!(s.count(), 3);
        assert!(s.heap_bytes() >= 2 * std::mem::size_of::<Slice<1>>());
    }
}
