//! Batch-parallel query execution.
//!
//! [`Quasii::execute_batch`] runs every batch in **two phases**:
//!
//! 1. **Shared-read phase** — queries whose whole §5.2 candidate window is
//!    covered by sealed arenas (see [`crate::seal`]) are pure reads: they
//!    run on a `&self` thread pool with *no* disjoint-partition constraint
//!    and no work-queue Mutex (an atomic cursor hands out queries). In the
//!    converged regime this phase is the entire batch.
//! 2. **Crack phase** — everything else falls back to the adaptive `&mut`
//!    machinery below, lazily invalidating just the seals the fallback
//!    queries span.
//!
//! The crack phase exploits exactly the structure the paper builds:
//! QUASII's top-level slice list contiguously partitions the data array, and
//! every crack a query triggers stays inside the top-level slice it refines
//! (`refine` only touches `data[s.begin..s.end]`). `execute_batch`
//! splits the data array
//! along top-level slice boundaries into disjoint `&mut [Record]` windows
//! (a `split_at_mut` chain — safe because sibling slices never share array
//! ranges), hands each worker the matching disjoint window of the
//! assignment-key column (see [`crate::keys`]; cracks keep both in
//! lockstep), assigns each query of the batch to the partitions the sequential
//! engine would visit for it, and runs the partitions on scoped worker
//! threads pulling from a chunked work queue.
//!
//! Splitting a batch into the two phases is result- and state-transparent:
//! sealed regions are immutable (a converged subtree never reorganizes), so
//! the reads commute with the cracks, and the sealed traversal reproduces
//! the engine's own visit order operation for operation.
//!
//! # Determinism
//!
//! Results are **bit-for-bit identical for every thread count**, including
//! the sequential `threads = 1` path, because:
//!
//! * a partition runs its assigned queries in ascending batch order — the
//!   same order the sequential loop applies them to those slices;
//! * the root-level search restricted to a partition visits exactly the
//!   slices the sequential extended binary search (§5.2) would visit there.
//!   The assignment predicate reproduces its "step one back" rule through
//!   the partitions' key boundaries (shared [`KeyFences`] machinery, also
//!   used by the `quasii-shard` router): partition `k` holds assignment
//!   keys in `[bounds[k], bounds[k+1])`, and those boundaries are stable
//!   for the whole batch — cracks only permute records within a partition,
//!   and the front sub-slice always keeps the minimum key;
//! * per-query hits are concatenated in partition order, which is ascending
//!   data-array order — the order the sequential loop appends them in;
//! * worker counters are folded back with order-independent sums.
//!
//! Every slice therefore sees the same sequence of refine/descend operations
//! it would see under sequential execution, so the final hierarchy, data
//! permutation, result vectors and stats are all independent of the thread
//! count *and* of how queries are split into batches.

use crate::engine;
use crate::fence::KeyFences;
use crate::slice::Slice;
use crate::stats::QuasiiStats;
use crate::{EnginePoisoned, Quasii};
use quasii_common::geom::{Aabb, Record};
use quasii_obs as obs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Closes a batch-phase span: feeds the phase histogram (metrics on) and
/// emits a [`obs::trace::TraceEvent::BatchPhase`] (tracing on). `t` comes
/// from [`obs::start_span`], so a disabled site costs two relaxed loads.
fn finish_phase(t: Option<std::time::Instant>, phase: obs::Phase, queries: u64) {
    let Some(start) = t else { return };
    let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
    if obs::enabled() {
        obs::registry::batch_phase(phase).observe(nanos);
    }
    obs::trace::record(|| obs::trace::TraceEvent::BatchPhase {
        phase,
        queries,
        nanos,
    });
}

/// Renders a caught panic payload for the poison marker.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The one-shot test trap: panics when the worker reaches the trapped
/// query index (see `Quasii::inject_panic_at`).
fn trap_check(trap: Option<usize>, j: usize) {
    if trap == Some(j) {
        panic!("injected worker panic at query {j} (test fault)");
    }
}

/// Work-queue chunking: partitions per worker thread, so stragglers (a
/// partition that happens to hold the hot slices) rebalance onto idle
/// workers instead of serializing the batch.
const CHUNKS_PER_WORKER: usize = 4;

/// One unit of work: a contiguous run of top-level slices, the matching
/// disjoint window of the data array, and the batch queries that reach it.
struct Partition<'a, const D: usize> {
    /// Position in partition order (ascending data ranges).
    index: usize,
    /// Offset of `data[0]` within the full array (slices are rebased by
    /// this amount while the partition is detached).
    offset: usize,
    /// This partition's window of the data array.
    data: &'a mut [Record<D>],
    /// The matching disjoint window of the assignment-key column (kept in
    /// lockstep with `data` by the crack kernels).
    keys: &'a mut [f64],
    /// The matching disjoint window of the upper-bound column.
    his: &'a mut [f64],
    /// This partition's run of the top-level slice list, rebased to local
    /// indices.
    slices: Vec<Slice<D>>,
    /// Indices (into the batch) of the queries assigned here, ascending.
    queries: Vec<usize>,
    /// Ids found per assigned query (aligned with `queries`).
    hits: Vec<Vec<u64>>,
    /// Work counters accumulated by whichever worker ran this partition.
    stats: QuasiiStats,
}

/// Rebases a slice subtree from absolute data indices to partition-local
/// ones (`sub`) or back (`add`).
fn shift<const D: usize>(s: &mut Slice<D>, offset: usize, add: bool) {
    if add {
        s.begin += offset;
        s.end += offset;
    } else {
        s.begin -= offset;
        s.end -= offset;
    }
    for c in &mut s.children {
        shift(c, offset, add);
    }
}

impl<const D: usize> Quasii<D> {
    /// The worker-thread count [`execute_batch`](Self::execute_batch) will
    /// use: the [`threads`](crate::QuasiiConfig::threads) knob, with `0`
    /// resolved to [`std::thread::available_parallelism`].
    pub fn effective_threads(&self) -> usize {
        match self.cfg.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }

    /// Executes a batch of range queries, cracking disjoint top-level
    /// partitions of the data array in parallel, and returns one id vector
    /// per query (in `queries` order).
    ///
    /// Results, the final hierarchy and the stats counters are bit-for-bit
    /// identical to running the queries one by one through
    /// [`SpatialIndex::query`], for every thread count (see the module
    /// documentation for why).
    ///
    /// # Panics
    ///
    /// A panic on a worker thread (a bug — the engine itself never panics
    /// on valid inputs) is caught under `catch_unwind`, the hierarchy is
    /// reassembled, the engine is **poisoned**, and this infallible entry
    /// point re-panics with the structured [`EnginePoisoned`] message.
    /// Callers that want to handle the fault (and
    /// [`repair`](Self::repair) the engine) should use
    /// [`try_execute_batch`](Self::try_execute_batch) instead.
    ///
    /// ```
    /// use quasii::{Quasii, QuasiiConfig};
    /// use quasii_common::geom::{Aabb, Record};
    ///
    /// let data: Vec<Record<2>> = (0..5_000)
    ///     .map(|i| {
    ///         let v = i as f64 / 10.0;
    ///         Record::new(i, Aabb::new([v; 2], [v + 2.0; 2]))
    ///     })
    ///     .collect();
    /// let mut index = Quasii::new(data, QuasiiConfig::default().with_threads(2));
    /// let batch = [
    ///     Aabb::new([10.0; 2], [30.0; 2]),
    ///     Aabb::new([200.0; 2], [220.0; 2]),
    /// ];
    /// let results = index.execute_batch(&batch);
    /// assert_eq!(results.len(), 2);
    /// assert!(!results[0].is_empty() && !results[1].is_empty());
    /// ```
    pub fn execute_batch(&mut self, queries: &[Aabb<D>]) -> Vec<Vec<u64>> {
        match self.try_execute_batch(queries) {
            Ok(results) => results,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`execute_batch`](Self::execute_batch): identical
    /// semantics, but a worker panic (caught under `catch_unwind`) or an
    /// already-poisoned engine returns the structured [`EnginePoisoned`]
    /// error instead of panicking. On `Err` the engine stays poisoned —
    /// and keeps refusing queries — until [`repair`](Self::repair).
    pub fn try_execute_batch(
        &mut self,
        queries: &[Aabb<D>],
    ) -> Result<Vec<Vec<u64>>, EnginePoisoned> {
        let before = self.rt.stats;
        if obs::enabled() && !queries.is_empty() {
            obs::registry::BATCHES_TOTAL.inc();
        }
        let r = self.try_execute_batch_inner(queries);
        self.publish_work_deltas(&before);
        r
    }

    /// Publishes this call's deterministic work-counter deltas into the
    /// global registry. The registry *mirrors* the engine-local counters —
    /// it never feeds back into them — so results, permutation and
    /// [`QuasiiStats`] are byte-identical with metrics on or off.
    pub(crate) fn publish_work_deltas(&self, before: &QuasiiStats) {
        if !obs::enabled() {
            return;
        }
        let now = &self.rt.stats;
        obs::registry::QUERIES_TOTAL.add(now.queries - before.queries);
        obs::registry::CRACKS_TOTAL.add(now.cracks - before.cracks);
        obs::registry::RECORDS_CRACKED_TOTAL.add(now.records_cracked - before.records_cracked);
    }

    /// The batch body, split out so the public wrapper can publish metric
    /// deltas on every return path.
    fn try_execute_batch_inner(
        &mut self,
        queries: &[Aabb<D>],
    ) -> Result<Vec<Vec<u64>>, EnginePoisoned> {
        if let Some(e) = self.poison_error() {
            return Err(e);
        }
        let trap = self.panic_trap.take();
        self.ensure_init();
        self.try_seal();
        let mut results: Vec<Vec<u64>> = Vec::with_capacity(queries.len());
        results.resize_with(queries.len(), Vec::new);
        if queries.is_empty() {
            return Ok(results);
        }
        let threads = self.effective_threads();
        let extended: Vec<Aabb<D>> = queries.iter().map(|q| self.extend_query(q)).collect();

        // Sealing disabled: skip classification outright (there is nothing
        // to classify against) and run the crack machinery directly — the
        // `--seal false` reference configuration must not pay any sealed-
        // path bookkeeping.
        if !self.cfg.seal {
            let span = obs::start_span();
            let mut next = 0;
            while next < queries.len() && (threads <= 1 || self.root.len() < 2) {
                self.run_one_caught(
                    next,
                    trap,
                    &queries[next],
                    &extended[next],
                    &mut results[next],
                )?;
                next += 1;
            }
            if next < queries.len() {
                let local_trap = trap.filter(|&t| t >= next).map(|t| t - next);
                self.run_partitioned(&queries[next..], &mut results[next..], threads, local_trap);
            }
            finish_phase(span, obs::Phase::Crack, queries.len() as u64);
            return match self.poison_error() {
                Some(e) => Err(e),
                None => Ok(results),
            };
        }

        // Classify each query by the root slices its §5.2 candidate window
        // covers: entirely sealed → the shared-read phase; anything else →
        // the crack phase. Classification is stable across the whole batch
        // because the sealed phase mutates nothing and the crack phase runs
        // after it (cracks only ever split *unsealed* slices, so a sealed
        // query's window can never gain an unsealed candidate mid-batch).
        let span = obs::start_span();
        let mut sealed_jobs: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        let mut crack_jobs: Vec<usize> = Vec::new();
        let mut crack_windows: Vec<std::ops::Range<usize>> = Vec::new();
        for j in 0..queries.len() {
            let cand = self.root_candidates(&extended[j]);
            if !self.root.is_empty() && self.all_sealed(cand.clone()) {
                sealed_jobs.push((j, cand));
            } else {
                crack_jobs.push(j);
                crack_windows.push(cand);
            }
        }
        finish_phase(span, obs::Phase::Classify, queries.len() as u64);

        // Phase 1 — shared-read execution over the sealed arenas: arbitrary
        // queries on a `&self` thread pool, no disjoint-partition
        // constraint, no work-queue Mutex (an atomic cursor hands out
        // jobs). Reads commute with the crack phase below: sealed regions
        // are immutable and crack queries never read them.
        if !sealed_jobs.is_empty() {
            let span = obs::start_span();
            self.run_sealed_batch(
                queries,
                &extended,
                &sealed_jobs,
                &mut results,
                threads,
                trap,
            );
            finish_phase(span, obs::Phase::SealedRead, sealed_jobs.len() as u64);
            if let Some(e) = self.poison_error() {
                return Err(e);
            }
        }

        // Phase 2 — the adaptive `&mut` path for everything else, after
        // lazily invalidating just the seals the fallback queries span
        // (root indices are still those of classification time: phase 1
        // did not touch the tree).
        for cand in crack_windows {
            self.invalidate_candidates(cand);
        }
        if crack_jobs.is_empty() {
            return Ok(results);
        }
        let span = obs::start_span();
        // Sequential prefix: the whole remainder with one worker; otherwise
        // only until the top level has cracked open far enough to split (a
        // fresh index starts as a single whole-dataset slice).
        let mut next = 0;
        while next < crack_jobs.len() && (threads <= 1 || self.root.len() < 2) {
            let j = crack_jobs[next];
            let mut out = std::mem::take(&mut results[j]);
            self.run_one_caught(j, trap, &queries[j], &extended[j], &mut out)?;
            results[j] = out;
            next += 1;
        }
        if next < crack_jobs.len() {
            let rest = &crack_jobs[next..];
            let sub_queries: Vec<Aabb<D>> = rest.iter().map(|&j| queries[j]).collect();
            let mut sub_results: Vec<Vec<u64>> = Vec::with_capacity(rest.len());
            sub_results.resize_with(rest.len(), Vec::new);
            let local_trap = trap.and_then(|t| rest.iter().position(|&j| j == t));
            self.run_partitioned(&sub_queries, &mut sub_results, threads, local_trap);
            for (&j, hits) in rest.iter().zip(sub_results) {
                results[j] = hits;
            }
        }
        finish_phase(span, obs::Phase::Crack, crack_jobs.len() as u64);
        match self.poison_error() {
            Some(e) => Err(e),
            None => Ok(results),
        }
    }

    /// Runs one crack-path query on the calling thread under
    /// `catch_unwind`; a panic poisons the engine and surfaces as `Err`.
    fn run_one_caught(
        &mut self,
        j: usize,
        trap: Option<usize>,
        q: &Aabb<D>,
        qe: &Aabb<D>,
        out: &mut Vec<u64>,
    ) -> Result<(), EnginePoisoned> {
        let r = catch_unwind(AssertUnwindSafe(|| {
            trap_check(trap, j);
            self.query_unsealed(q, qe, out);
        }));
        if let Err(payload) = r {
            self.poison(format!(
                "panic during crack query {j}: {}",
                panic_message(payload)
            ));
            return Err(self.poison_error().expect("poison just set"));
        }
        Ok(())
    }

    /// Phase-1 executor: answers `jobs` (indices into the batch) entirely
    /// through the sealed arenas. Workers share `&self` and pull jobs off an
    /// atomic cursor; each query's result vector is computed independently
    /// of scheduling, so results are byte-identical for every thread count.
    fn run_sealed_batch(
        &mut self,
        queries: &[Aabb<D>],
        extended: &[Aabb<D>],
        jobs: &[(usize, std::ops::Range<usize>)],
        results: &mut [Vec<u64>],
        threads: usize,
        trap: Option<usize>,
    ) {
        let mut tested_total = 0u64;
        let mut worker_panic: Option<String> = None;
        if threads <= 1 || jobs.len() < 2 {
            for (j, cand) in jobs {
                let r = catch_unwind(AssertUnwindSafe(|| {
                    trap_check(trap, *j);
                    let mut out = Vec::new();
                    let tested =
                        self.run_sealed_query(&queries[*j], &extended[*j], cand.clone(), &mut out);
                    (out, tested)
                }));
                match r {
                    Ok((out, tested)) => {
                        results[*j] = out;
                        tested_total += tested;
                    }
                    Err(payload) => {
                        worker_panic = Some(panic_message(payload));
                        break;
                    }
                }
            }
        } else {
            let workers = threads.min(jobs.len());
            let cursor = AtomicUsize::new(0);
            let collected: Mutex<Vec<(usize, Vec<u64>, u64)>> =
                Mutex::new(Vec::with_capacity(jobs.len()));
            let panicked: Mutex<Option<String>> = Mutex::new(None);
            let this: &Quasii<D> = self;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, Vec<u64>, u64)> = Vec::new();
                        loop {
                            let t = cursor.fetch_add(1, Ordering::Relaxed);
                            let Some((j, cand)) = jobs.get(t) else { break };
                            // Isolate each job: a panic is recorded, never
                            // unwound across the scope (which would abort
                            // the batch with the results half-collected).
                            let r = catch_unwind(AssertUnwindSafe(|| {
                                trap_check(trap, *j);
                                let mut out = Vec::new();
                                let tested = this.run_sealed_query(
                                    &queries[*j],
                                    &extended[*j],
                                    cand.clone(),
                                    &mut out,
                                );
                                (out, tested)
                            }));
                            match r {
                                Ok((out, tested)) => local.push((*j, out, tested)),
                                Err(payload) => {
                                    *panicked.lock().expect("panic slot poisoned") =
                                        Some(panic_message(payload));
                                    break;
                                }
                            }
                        }
                        // One lock per worker, at drain time — the hot loop
                        // itself is contention-free.
                        collected.lock().expect("collector poisoned").extend(local);
                    });
                }
            });
            worker_panic = panicked.into_inner().expect("panic slot poisoned");
            for (j, out, tested) in collected.into_inner().expect("collector poisoned") {
                results[j] = out;
                tested_total += tested;
            }
        }
        self.rt.stats.queries += jobs.len() as u64;
        self.rt.stats.objects_tested += tested_total;
        self.seal_stats
            .add(crate::SealStats::SEALED_QUERIES, jobs.len() as u64);
        if obs::enabled() {
            obs::registry::SEALED_QUERIES_TOTAL.add(jobs.len() as u64);
        }
        if let Some(msg) = worker_panic {
            // The sealed phase mutates nothing, so the structure is intact
            // — but the batch's results are incomplete, so the engine still
            // refuses to pretend it answered (repair() will revalidate).
            self.poison(format!("worker panic during sealed batch phase: {msg}"));
        }
    }

    /// Parallel remainder of a batch: requires `root.len() >= 2` and
    /// `threads >= 2`. A worker panic is caught, the partition (slices
    /// reattached) is returned to the pool so the hierarchy reassembles
    /// completely, and the engine is poisoned.
    fn run_partitioned(
        &mut self,
        queries: &[Aabb<D>],
        results: &mut [Vec<u64>],
        threads: usize,
        trap: Option<usize>,
    ) {
        let extended: Vec<Aabb<D>> = queries.iter().map(|q| self.extend_query(q)).collect();

        // Group the top-level slices into contiguous runs of roughly equal
        // record counts. More runs than workers, so the queue balances load.
        let target_parts = (threads * CHUNKS_PER_WORKER).min(self.root.len());
        let per_part = self.data.len().div_ceil(target_parts).max(1);
        let roots = std::mem::take(&mut self.root);
        let mut groups: Vec<Vec<Slice<D>>> = Vec::with_capacity(target_parts);
        let mut cur: Vec<Slice<D>> = Vec::new();
        let mut cur_records = 0usize;
        for s in roots {
            cur_records += s.len();
            cur.push(s);
            if cur_records >= per_part && groups.len() + 1 < target_parts {
                groups.push(std::mem::take(&mut cur));
                cur_records = 0;
            }
        }
        if !cur.is_empty() {
            groups.push(cur);
        }
        let m = groups.len();

        // Key boundaries between partitions: partition k owns assignment
        // keys in [fences.range(k)). The inner fence before partition k is
        // the key_lo of its first slice, which make_sub measured exactly; it
        // stays the partition's true minimum for the whole batch because
        // cracks never move records across partitions and the front
        // sub-slice of any refinement keeps the minimum-key record.
        let fences = KeyFences::from_inner(groups[1..].iter().map(|g| g[0].key_lo).collect());

        // Detach the disjoint data windows (split_at_mut chain) and rebase
        // each group's slices onto its window; the key column is split
        // along the exact same boundaries so each worker cracks its
        // (keys, data) pair in lockstep.
        let mut parts: Vec<Partition<'_, D>> = Vec::with_capacity(m);
        let mut rest: &mut [Record<D>] = &mut self.data;
        let (mut rest_keys, mut rest_his) = self.keys.as_mut_slices();
        let mut consumed = 0usize;
        for (index, mut slices) in groups.into_iter().enumerate() {
            let begin = slices[0].begin;
            let end = slices.last().expect("groups are non-empty").end;
            debug_assert_eq!(begin, consumed, "top-level slices must be contiguous");
            let (window, tail) = rest.split_at_mut(end - consumed);
            let (key_window, key_tail) = rest_keys.split_at_mut(end - consumed);
            let (hi_window, hi_tail) = rest_his.split_at_mut(end - consumed);
            rest = tail;
            rest_keys = key_tail;
            rest_his = hi_tail;
            consumed = end;
            for s in &mut slices {
                shift(s, begin, false);
            }
            parts.push(Partition {
                index,
                offset: begin,
                data: window,
                keys: key_window,
                his: hi_window,
                slices,
                queries: Vec::new(),
                hits: Vec::new(),
                stats: QuasiiStats::default(),
            });
        }

        // Assign each query to exactly the partitions the sequential root
        // search would visit: the candidate range [qe.lo, qe.hi] on the
        // root dimension; `KeyFences::overlapping`'s closed lower edge
        // admits the partition holding the "step one back" slice.
        let assigned = fences.assign(extended.iter().map(|qe| (qe.lo[0], qe.hi[0])));
        for (p, queries) in parts.iter_mut().zip(assigned) {
            p.queries = queries;
        }

        // Chunked work queue: workers pop partitions until none are left.
        let env = &self.env;
        let queue: Mutex<Vec<Partition<'_, D>>> = Mutex::new(parts);
        let done: Mutex<Vec<Partition<'_, D>>> = Mutex::new(Vec::with_capacity(m));
        let panicked: Mutex<Option<String>> = Mutex::new(None);
        let workers = threads.min(m);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if panicked.lock().expect("panic slot poisoned").is_some() {
                        break; // a sibling already failed the batch
                    }
                    let popped = queue.lock().expect("queue poisoned").pop();
                    let Some(mut p) = popped else { break };
                    // catch_unwind around the whole partition run: a panic
                    // mid-crack may leave this partition's subtree
                    // inconsistent, but the partition object (and its
                    // slices) survives, so the hierarchy reassembles
                    // completely and repair() can inspect it.
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        let mut rt = engine::Runtime::<D>::new();
                        for &j in &p.queries {
                            trap_check(trap, j);
                            let mut out = Vec::new();
                            engine::query_level(
                                p.data,
                                p.keys,
                                p.his,
                                &mut p.slices,
                                &queries[j],
                                &extended[j],
                                env,
                                &mut rt,
                                &mut out,
                            );
                            p.hits.push(out);
                        }
                        p.stats = rt.stats;
                    }));
                    done.lock().expect("done poisoned").push(p);
                    if let Err(payload) = r {
                        *panicked.lock().expect("panic slot poisoned") =
                            Some(panic_message(payload));
                        break;
                    }
                });
            }
        });

        // Reassemble: partitions back in data order, slices rebased to
        // absolute indices, hits concatenated per query in partition order
        // (= ascending data order, the sequential append order), counters
        // summed. After a worker panic the queue may still hold unstarted
        // partitions — they reattach too, so the top level is always a
        // complete partition of the data array.
        let span = obs::start_span();
        let mut finished = done.into_inner().expect("done poisoned");
        finished.extend(queue.into_inner().expect("queue poisoned"));
        finished.sort_unstable_by_key(|p| p.index);
        debug_assert_eq!(finished.len(), m);
        self.rt.stats.queries += queries.len() as u64;
        for p in &mut finished {
            self.rt.stats.merge(&p.stats);
            for s in &mut p.slices {
                shift(s, p.offset, true);
            }
            self.root.append(&mut p.slices);
            for (&j, hits) in p.queries.iter().zip(p.hits.drain(..)) {
                results[j].extend(hits);
            }
        }
        finish_phase(span, obs::Phase::Merge, queries.len() as u64);
        if let Some(msg) = panicked.into_inner().expect("panic slot poisoned") {
            self.poison(format!(
                "worker panic during partitioned crack phase: {msg}"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Quasii, QuasiiConfig};
    use quasii_common::dataset::{degenerate, uniform_boxes_in};
    use quasii_common::geom::{Aabb, Record};
    use quasii_common::index::{assert_matches_brute_force, SpatialIndex};
    use quasii_common::workload;

    /// The sequential ground truth: a fresh index answering one query at a
    /// time, plus its final observable state.
    fn sequential_reference<const D: usize>(
        data: &[Record<D>],
        queries: &[Aabb<D>],
        cfg: &QuasiiConfig,
    ) -> (Vec<Vec<u64>>, Quasii<D>) {
        let mut idx = Quasii::new(data.to_vec(), cfg.clone().with_threads(1));
        let results = queries.iter().map(|q| idx.query_collect(q)).collect();
        (results, idx)
    }

    fn ids<const D: usize>(data: &[Record<D>]) -> Vec<u64> {
        data.iter().map(|r| r.id).collect()
    }

    #[test]
    fn batch_matches_sequential_bit_for_bit_across_thread_counts() {
        let data = uniform_boxes_in::<3>(4_000, 1_000.0, 71);
        let u = Aabb::new([0.0; 3], [1_000.0; 3]);
        let queries = workload::uniform(&u, 60, 1e-3, 72).queries;
        let cfg = QuasiiConfig::with_tau(16);
        let (reference, seq) = sequential_reference(&data, &queries, &cfg);
        for threads in [1, 2, 4, 8] {
            let mut idx = Quasii::new(data.clone(), cfg.clone().with_threads(threads));
            let got = idx.execute_batch(&queries);
            assert_eq!(got, reference, "results diverged at threads={threads}");
            idx.validate()
                .unwrap_or_else(|e| panic!("threads={threads}: {e}"));
            assert_eq!(
                idx.stats(),
                seq.stats(),
                "work counters diverged at threads={threads}"
            );
            assert_eq!(
                ids(idx.data()),
                ids(seq.data()),
                "data permutation diverged at threads={threads}"
            );
        }
    }

    #[test]
    fn batch_agrees_with_brute_force() {
        let data = uniform_boxes_in::<3>(2_500, 500.0, 73);
        let u = Aabb::new([0.0; 3], [500.0; 3]);
        let queries = workload::clustered(&u, 4, 10, 1e-3, 74).queries;
        let mut idx = Quasii::new(data.clone(), QuasiiConfig::with_tau(12).with_threads(4));
        let got = idx.execute_batch(&queries);
        for (q, hits) in queries.iter().zip(&got) {
            assert_matches_brute_force(&data, q, hits);
        }
        idx.validate().unwrap();
    }

    #[test]
    fn batching_is_transparent_to_later_queries() {
        // A batch run, then individual queries, must behave exactly like a
        // purely sequential history (the hierarchy converged identically).
        let data = uniform_boxes_in::<3>(3_000, 800.0, 75);
        let u = Aabb::new([0.0; 3], [800.0; 3]);
        let w = workload::uniform(&u, 40, 1e-3, 76).queries;
        let (batch, later) = w.split_at(25);
        let cfg = QuasiiConfig::with_tau(20);

        let (mut expect, mut seq) = sequential_reference(&data, batch, &cfg);
        for q in later {
            expect.push(seq.query_collect(q));
        }

        let mut idx = Quasii::new(data, cfg.with_threads(3));
        let mut got = idx.execute_batch(batch);
        for q in later {
            got.push(idx.query_collect(q));
        }
        assert_eq!(got, expect);
        assert_eq!(idx.stats(), seq.stats());
    }

    #[test]
    fn chained_batches_equal_one_big_batch() {
        let data = uniform_boxes_in::<2>(2_000, 400.0, 77);
        let u = Aabb::new([0.0; 2], [400.0; 2]);
        let queries = workload::uniform(&u, 48, 1e-3, 78).queries;
        let cfg = QuasiiConfig::with_tau(10).with_threads(4);

        let mut one = Quasii::new(data.clone(), cfg.clone());
        let whole = one.execute_batch(&queries);

        let mut chunked = Quasii::new(data, cfg);
        let mut got = Vec::new();
        for chunk in queries.chunks(7) {
            got.extend(chunked.execute_batch(chunk));
        }
        assert_eq!(got, whole);
        assert_eq!(chunked.stats(), one.stats());
    }

    #[test]
    fn empty_batch_empty_dataset_and_single_query() {
        let mut empty = Quasii::<3>::new(Vec::new(), QuasiiConfig::default().with_threads(4));
        assert!(empty.execute_batch(&[]).is_empty());
        let q = Aabb::new([0.0; 3], [1.0; 3]);
        assert_eq!(empty.execute_batch(&[q]), vec![Vec::<u64>::new()]);
        empty.validate().unwrap();

        let data = uniform_boxes_in::<3>(500, 100.0, 79);
        let mut idx = Quasii::new(data.clone(), QuasiiConfig::default().with_threads(4));
        assert!(idx.execute_batch(&[]).is_empty());
        let q = Aabb::new([10.0; 3], [40.0; 3]);
        let got = idx.execute_batch(&[q]);
        assert_matches_brute_force(&data, &q, &got[0]);
    }

    #[test]
    fn degenerate_datasets_survive_parallel_batches() {
        for data in [
            degenerate::identical::<2>(600),
            degenerate::shared_lower::<2>(600),
        ] {
            let mut cfg = QuasiiConfig::with_tau(8).with_threads(4);
            cfg.max_artificial_depth = 16;
            let queries = [
                Aabb::new([0.0; 2], [700.0; 2]),
                Aabb::new([5.0; 2], [6.0; 2]),
                Aabb::new([2.0; 2], [80.0; 2]),
            ];
            let (reference, _) = sequential_reference(&data, &queries, &cfg);
            let mut idx = Quasii::new(data.clone(), cfg);
            assert_eq!(idx.execute_batch(&queries), reference);
            idx.validate().unwrap();
        }
    }

    #[test]
    fn query_batch_trait_method_routes_to_execute_batch() {
        let data = uniform_boxes_in::<3>(1_000, 200.0, 80);
        let queries = vec![Aabb::new([0.0; 3], [50.0; 3]); 3];
        let mut idx = Quasii::new(data.clone(), QuasiiConfig::default().with_threads(2));
        let got = idx.query_batch(&queries);
        assert_eq!(got.len(), 3);
        for (q, hits) in queries.iter().zip(&got) {
            assert_matches_brute_force(&data, q, hits);
        }
    }

    #[test]
    fn worker_panic_poisons_then_repair_restores_correct_answers() {
        let data = uniform_boxes_in::<3>(2_000, 500.0, 81);
        let u = Aabb::new([0.0; 3], [500.0; 3]);
        let queries = workload::uniform(&u, 20, 1e-3, 82).queries;
        let mut idx = Quasii::new(data.clone(), QuasiiConfig::with_tau(12).with_threads(4));
        idx.execute_batch(&queries[..8]); // warm up: top level cracked open

        idx.inject_panic_at(3);
        let err = idx
            .try_execute_batch(&queries[8..])
            .expect_err("injected panic must fail the batch");
        assert!(err.detail.contains("injected worker panic"), "{err}");
        assert!(idx.is_poisoned());
        // Still poisoned: no silent wrong answers from any entry point.
        assert!(idx.try_execute_batch(&queries[..2]).is_err());
        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            idx.query_collect(&queries[0])
        }));
        assert!(panic.is_err(), "query on a poisoned engine must panic");

        let outcome = idx.repair();
        assert_ne!(outcome, crate::RepairOutcome::Clean);
        assert!(!idx.is_poisoned());
        idx.validate()
            .expect("repaired engine is structurally sound");
        for q in &queries {
            let mut got = idx.query_collect(q);
            got.sort_unstable();
            assert_matches_brute_force(&data, q, &got);
        }
    }

    #[test]
    fn effective_threads_resolves_zero_to_parallelism() {
        let idx = Quasii::<2>::new(Vec::new(), QuasiiConfig::default());
        assert!(idx.effective_threads() >= 1);
        let idx = Quasii::<2>::new(Vec::new(), QuasiiConfig::default().with_threads(7));
        assert_eq!(idx.effective_threads(), 7);
    }
}
