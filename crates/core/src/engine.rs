//! Query processing and index refinement — the paper's Algorithm 1
//! (`query`) and Algorithm 2 (`refine`), including artificial refinement and
//! query extension (§5.2).
//!
//! Everything here operates on split borrows of the [`crate::Quasii`]
//! fields: the data array **and its narrow column pair** (assignment keys +
//! upper bounds, see [`crate::keys`]) are reorganized in place, in
//! lockstep, while the slice hierarchy is rebuilt around them. Every
//! function taking `(data, keys, his)` expects three full, parallel arrays
//! indexed by the same slice ranges.

use crate::config::AssignBy;
use crate::crack::{
    crack_median_keyed_measured, crack_three_keyed_measured, crack_two_keyed_measured, DimBounds,
};
use crate::keys::rekey;
use crate::simd::{self, SimdLevel};
use crate::slice::Slice;
use crate::stats::QuasiiStats;
use quasii_common::geom::{Aabb, Record};
use quasii_obs as obs;

/// Immutable per-index parameters.
pub(crate) struct Env<const D: usize> {
    /// τ thresholds per level (Eq. 1 schedule).
    pub tau: [usize; D],
    /// Assignment coordinate (paper default: lower).
    pub mode: AssignBy,
    /// Recursion guard for artificial refinement.
    pub max_artificial_depth: usize,
    /// Kernel generation for the streaming test kernels (bottom-level
    /// collect, sealed lane tests), resolved once at engine construction
    /// (see [`crate::simd`]).
    pub simd: SimdLevel,
    /// Kernel generation for the partition (crack) kernels. Resolved
    /// separately because `Auto` keeps the cracks on the scalar fused
    /// generation: the chunked classify-then-swap pass re-streams the key
    /// column and loses on bandwidth-bound hosts (see
    /// [`crate::simd::SimdPolicy::resolve_crack`]).
    pub simd_crack: SimdLevel,
}

/// Mutable runtime state shared across the recursion.
pub(crate) struct Runtime<const D: usize> {
    /// Work counters.
    pub stats: QuasiiStats,
}

impl<const D: usize> Runtime<D> {
    pub fn new() -> Self {
        Self {
            stats: QuasiiStats::default(),
        }
    }

    fn note_slice(&mut self, s: &Slice<D>) {
        self.stats.slices_created += 1;
        if s.refined {
            self.stats.slices_refined += 1;
        }
    }
}

/// Placeholder swapped into a slice list while its slice is refined.
fn placeholder<const D: usize>() -> Slice<D> {
    Slice {
        level: 0,
        begin: 0,
        end: 0,
        bbox: Aabb::empty(),
        cut_lo: 0.0,
        cut_hi: 0.0,
        key_lo: 0.0,
        refined: true,
        keys_fresh: true,
        children: Vec::new(),
    }
}

/// Books one crack kernel pass: the two deterministic work counters (the
/// ones the determinism gate compares), plus a per-kernel trace event when
/// tracing is armed. All four kernel shapes funnel through here.
fn record_crack<const D: usize>(rt: &mut Runtime<D>, records: u64) {
    rt.stats.cracks += 1;
    rt.stats.records_cracked += records;
    obs::trace::record(|| obs::trace::TraceEvent::Crack { records });
}

/// Builds a sub-slice over `begin..end` after a crack of `parent` on its
/// dimension, from the crack-dimension bounds the keyed kernel measured
/// during the partition pass. A segment at or below τ becomes refined and
/// gets its exact MBB measured here — the only record scan on this path,
/// over a small, just-cracked (cache-resident) segment; larger segments
/// keep the parent's open-ended box narrowed to the measured interval on
/// the crack dimension (§5.1).
#[allow(clippy::too_many_arguments)]
fn make_sub<const D: usize>(
    data: &[Record<D>],
    parent: &Slice<D>,
    begin: usize,
    end: usize,
    cut_lo: f64,
    cut_hi: f64,
    db: &DimBounds,
    env: &Env<D>,
    rt: &mut Runtime<D>,
) -> Slice<D> {
    let dim = parent.level;
    let mut s = Slice {
        level: dim,
        begin,
        end,
        bbox: parent.bbox,
        cut_lo,
        cut_hi,
        key_lo: db.min_key,
        refined: false,
        // Crack kernels permute the column pair in lockstep, so every crack
        // output range still caches its own-level keys and upper bounds.
        keys_fresh: true,
        children: Vec::new(),
    };
    if s.len() <= env.tau[dim] {
        s.measure_exact(data);
        s.refined = true;
    } else {
        s.bbox.lo[dim] = db.min_lo;
        s.bbox.hi[dim] = db.max_hi;
    }
    rt.note_slice(&s);
    s
}

/// Finalizes a slice that cannot be split further (value-indivisible
/// assignment keys): exact MBB, marked refined even though it exceeds τ.
fn force_refine<const D: usize>(
    data: &[Record<D>],
    mut s: Slice<D>,
    rt: &mut Runtime<D>,
) -> Slice<D> {
    s.measure_exact(data);
    s.refined = true;
    rt.stats.forced_refinements += 1;
    rt.stats.slices_refined += 1;
    s
}

/// Re-keys a slice's range for its own level unless the columns already
/// cache it — the lazy per-level rebuild of the column pair (root slices
/// and crack outputs are born fresh; only default children pay this).
fn ensure_keys<const D: usize>(
    data: &[Record<D>],
    keys: &mut [f64],
    his: &mut [f64],
    s: &mut Slice<D>,
    env: &Env<D>,
    rt: &mut Runtime<D>,
) {
    if !s.keys_fresh {
        rekey(
            &mut keys[s.begin..s.end],
            &mut his[s.begin..s.end],
            &data[s.begin..s.end],
            s.level,
            env.mode,
        );
        s.keys_fresh = true;
        rt.stats.rekeys += 1;
        rt.stats.records_rekeyed += s.len() as u64;
    }
}

/// Artificial refinement (§5.2): recursive midpoint two-way cracks until
/// every *query-overlapping* piece satisfies τ; non-overlapping pieces stay
/// coarse for later queries. Falls back to a rank (median) split, then to
/// force-refinement, on degenerate value distributions.
///
/// `s` must have fresh keys (its callers guarantee it: `refine` re-keys
/// before cracking and every `make_sub` output is born fresh).
#[allow(clippy::too_many_arguments)]
fn artificial<const D: usize>(
    data: &mut [Record<D>],
    keys: &mut [f64],
    his: &mut [f64],
    s: Slice<D>,
    qe: &Aabb<D>,
    env: &Env<D>,
    rt: &mut Runtime<D>,
    out: &mut Vec<Slice<D>>,
    depth: usize,
) {
    if s.is_empty() {
        return;
    }
    let dim = s.level;
    if s.refined || qe.lo[dim] > s.bbox.hi[dim] || qe.hi[dim] < s.bbox.lo[dim] {
        out.push(s);
        return;
    }
    if depth >= env.max_artificial_depth {
        out.push(force_refine(data, s, rt));
        return;
    }
    debug_assert!(s.keys_fresh, "artificial() requires fresh columns");
    // Midpoint of the actual value interval (intersection of the cut range
    // with the measured bounds keeps the midpoint meaningful even when the
    // cut range is much wider than the data).
    let lo = s.bbox.lo[dim].max(s.cut_lo);
    let hi = s.bbox.hi[dim].min(s.cut_hi);
    let mid = 0.5 * (lo + hi);
    let seg = &mut data[s.begin..s.end];
    let kseg = &mut keys[s.begin..s.end];
    let hseg = &mut his[s.begin..s.end];
    let seg_len = seg.len() as u64;
    let (mut split, mut lm, mut rm) =
        crack_two_keyed_measured(kseg, hseg, seg, dim, env.mode, mid, env.simd_crack);
    let mut split_value = mid;
    if split == 0 || split == seg.len() {
        // Midpoint failed to separate — rank-based fallback (rare: only on
        // degenerate value distributions). The measuring kernel returns
        // both halves' bounds from its final partition pass, so no
        // re-scan of the halves is needed here either.
        let (msplit, mlm, mrm) =
            crack_median_keyed_measured(kseg, hseg, seg, dim, env.mode, env.simd_crack);
        if msplit == 0 || msplit == seg.len() {
            out.push(force_refine(data, s, rt));
            return;
        }
        (split, lm, rm) = (msplit, mlm, mrm);
        split_value = rm.min_key;
    }
    record_crack(rt, seg_len);
    let m = s.begin + split;
    let left = make_sub(data, &s, s.begin, m, s.cut_lo, split_value, &lm, env, rt);
    let right = make_sub(data, &s, m, s.end, split_value, s.cut_hi, &rm, env, rt);
    artificial(data, keys, his, left, qe, env, rt, out, depth + 1);
    artificial(data, keys, his, right, qe, env, rt, out, depth + 1);
}

/// Algorithm 2: refines `s` on its own dimension against the (extended)
/// query, returning the replacement slices sorted by data-array position.
///
/// Callers guarantee `s` is unrefined — `query_level` descends refined
/// slices in place without ever calling `refine` (so the old
/// refined-early-return `vec![s]` allocation is gone from this path).
pub(crate) fn refine<const D: usize>(
    data: &mut [Record<D>],
    keys: &mut [f64],
    his: &mut [f64],
    mut s: Slice<D>,
    qe: &Aabb<D>,
    env: &Env<D>,
    rt: &mut Runtime<D>,
) -> Vec<Slice<D>> {
    debug_assert!(
        !s.refined,
        "refine() must not be called on refined slices (query_level guards)"
    );
    ensure_keys(data, keys, his, &mut s, env, rt);
    let dim = s.level;
    let (cl, ch) = (s.cut_lo, s.cut_hi);
    let (ql, qu) = (qe.lo[dim], qe.hi[dim]);
    let inside_l = ql > cl && ql < ch;
    let inside_u = qu > cl && qu < ch;

    let seg_len = s.len() as u64;
    let mut primary: Vec<Slice<D>> = Vec::with_capacity(3);
    match (inside_l, inside_u) {
        (true, true) => {
            // Both query bounds inside the slice: three-way slicing.
            let (p1, p2, m) = crack_three_keyed_measured(
                &mut keys[s.begin..s.end],
                &mut his[s.begin..s.end],
                &mut data[s.begin..s.end],
                dim,
                env.mode,
                ql,
                qu,
                env.simd_crack,
            );
            record_crack(rt, seg_len);
            let (b, m1, m2, e) = (s.begin, s.begin + p1, s.begin + p2, s.end);
            primary.push(make_sub(data, &s, b, m1, cl, ql, &m[0], env, rt));
            primary.push(make_sub(data, &s, m1, m2, ql, qu, &m[1], env, rt));
            primary.push(make_sub(data, &s, m2, e, qu, ch, &m[2], env, rt));
        }
        (true, false) => {
            // Only the lower bound cuts the slice: two-way at ql.
            let (p, lm, rm) = crack_two_keyed_measured(
                &mut keys[s.begin..s.end],
                &mut his[s.begin..s.end],
                &mut data[s.begin..s.end],
                dim,
                env.mode,
                ql,
                env.simd_crack,
            );
            record_crack(rt, seg_len);
            let m = s.begin + p;
            primary.push(make_sub(data, &s, s.begin, m, cl, ql, &lm, env, rt));
            primary.push(make_sub(data, &s, m, s.end, ql, ch, &rm, env, rt));
        }
        (false, true) => {
            // Only the upper bound cuts the slice: two-way keeping
            // `key <= qu` on the left (pivot just above qu).
            let pivot = qu.next_up();
            let (p, lm, rm) = crack_two_keyed_measured(
                &mut keys[s.begin..s.end],
                &mut his[s.begin..s.end],
                &mut data[s.begin..s.end],
                dim,
                env.mode,
                pivot,
                env.simd_crack,
            );
            record_crack(rt, seg_len);
            let m = s.begin + p;
            primary.push(make_sub(data, &s, s.begin, m, cl, qu, &lm, env, rt));
            primary.push(make_sub(data, &s, m, s.end, qu, ch, &rm, env, rt));
        }
        (false, false) => {
            // The query covers the slice on this dimension: only artificial
            // boundaries can refine it (paper Alg. 2 "default" case).
            primary.push(s);
        }
    }

    let mut out = Vec::with_capacity(primary.len() + 2);
    for p in primary {
        if p.is_empty() {
            continue;
        }
        // Paper Alg. 2 lines 8–13: pieces still above τ that overlap the
        // query get artificial refinement; others stay coarse.
        artificial(data, keys, his, p, qe, env, rt, &mut out, 0);
    }
    out
}

/// Visits one query-overlapping slice: scans it at the bottom level or
/// recurses into its children (materializing the default child first).
#[allow(clippy::too_many_arguments)]
fn descend<const D: usize>(
    data: &mut [Record<D>],
    keys: &mut [f64],
    his: &mut [f64],
    s: &mut Slice<D>,
    q: &Aabb<D>,
    qe: &Aabb<D>,
    env: &Env<D>,
    rt: &mut Runtime<D>,
    out: &mut Vec<u64>,
) {
    if s.level + 1 == D {
        // Bottom level: test the actual objects against the original query.
        // Predicated collect — every id is written, the write cursor
        // advances by the (branch-free) intersection result, and the
        // over-provisioned tail is truncated: the converged fast path pays
        // no unpredictable branch per record and exactly one reservation.
        // `collect_bottom` dispatches to the batched AABB kernel (one
        // vector compare pair per record at D == 2/3) or the scalar
        // branchless loop, with identical emissions either way.
        let seg = &data[s.begin..s.end];
        rt.stats.objects_tested += seg.len() as u64;
        let start = out.len();
        out.resize(start + seg.len(), 0);
        let w = simd::collect_bottom(env.simd, seg, q, &mut out[start..]);
        out.truncate(start + w);
        return;
    }
    if s.children.is_empty() {
        let child = s.default_child(env.tau[s.level + 1]);
        rt.note_slice(&child);
        rt.stats.default_children += 1;
        s.children.push(child);
    }
    query_level(data, keys, his, &mut s.children, q, qe, env, rt, out);
}

/// Algorithm 1: processes one level's slice list depth-first, refining
/// query-overlapping slices, descending into children (materializing default
/// children as needed) and collecting results at the bottom level.
///
/// `q` is the original query (used for pruning and the final intersection
/// filter); `qe` is the extension-adjusted query used for reorganization —
/// every assignment key of a potentially qualifying object lies inside
/// `[qe.lo, qe.hi]` on each dimension.
#[allow(clippy::too_many_arguments)]
pub(crate) fn query_level<const D: usize>(
    data: &mut [Record<D>],
    keys: &mut [f64],
    his: &mut [f64],
    slices: &mut Vec<Slice<D>>,
    q: &Aabb<D>,
    qe: &Aabb<D>,
    env: &Env<D>,
    rt: &mut Runtime<D>,
    out: &mut Vec<u64>,
) {
    if slices.is_empty() {
        return;
    }
    let dim = slices[0].level;
    debug_assert!(slices.iter().all(|s| s.level == dim));

    // Binary search (§5.2's "extended binary search"): sibling lists are
    // sorted by minimum assignment key. The slice *before* the partition
    // point may still straddle qe.lo (its keys end somewhere below the next
    // slice's minimum), so step one back.
    let start = slices
        .partition_point(|s| s.key_lo < qe.lo[dim])
        .saturating_sub(1);

    // Allocated lazily on the first refinement: in the fully converged
    // regime every overlapping slice takes the `descend` fast path below and
    // steady-state queries perform no allocation besides the result vector.
    let mut replacements: Option<Vec<(usize, Vec<Slice<D>>)>> = None;
    for i in start..slices.len() {
        if slices[i].key_lo > qe.hi[dim] {
            break; // sorted by key: nothing further can hold a qualifying key
        }
        if !q.intersects(&slices[i].bbox) {
            continue;
        }
        if slices[i].refined {
            // Fast path for the converged regime: descend in place, no
            // replacement bookkeeping, no allocation.
            descend(data, keys, his, &mut slices[i], q, qe, env, rt, out);
            continue;
        }
        let s = std::mem::replace(&mut slices[i], placeholder());
        let mut subs = refine(data, keys, his, s, qe, env, rt);
        for sub in subs.iter_mut() {
            if q.intersects(&sub.bbox) {
                descend(data, keys, his, sub, q, qe, env, rt, out);
            }
        }
        replacements.get_or_insert_with(Vec::new).push((i, subs));
    }

    // Put replacements back. A lone replacement splices in place; with more
    // than one, repeated `splice(i..=i, …)` would shift the tail once per
    // refined slice — O(replacements × list length), which a single query
    // can hit on every level it refines — so the list is instead rebuilt in
    // one left-to-right merge pass. Sortedness is preserved either way:
    // every replacement run covers exactly its predecessor's range.
    if let Some(replacements) = replacements {
        if replacements.len() == 1 {
            let (i, subs) = replacements.into_iter().next().expect("len checked");
            slices.splice(i..=i, subs);
        } else {
            let added: usize = replacements.iter().map(|(_, subs)| subs.len()).sum();
            let mut merged: Vec<Slice<D>> =
                Vec::with_capacity(slices.len() - replacements.len() + added);
            let mut reps = replacements.into_iter().peekable();
            for (i, s) in slices.drain(..).enumerate() {
                match reps.peek() {
                    // `s` is the placeholder left at a refined index: drop
                    // it and merge the replacement run in.
                    Some((ri, _)) if *ri == i => {
                        merged.extend(reps.next().expect("peeked").1);
                    }
                    _ => merged.push(s),
                }
            }
            *slices = merged;
        }
    }
}
