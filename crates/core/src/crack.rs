//! Cracking kernels: the in-place partition primitives QUASII uses to
//! reorganize the data array (paper §5.2, the "incremental quick sort
//! strategy introduced in database cracking").
//!
//! All partitions key on one *representative coordinate* of the object in
//! one dimension — the lower corner by default (§5.1 "Data-oriented
//! Slicing": each object belongs to exactly one slice, no replication), or
//! the center/upper corner per the paper's footnote 1 (see
//! [`crate::AssignBy`]).
//!
//! # Kernel generations
//!
//! The engine has gone through three kernel generations:
//!
//! 1. **record-streaming** — compare-and-swap over the wide `Record<D>`
//!    array, recomputing [`key_of`] on every probe, then separate measuring
//!    passes per output segment (kept in [`reference`] as the oracle);
//! 2. **fused** — same record-streaming comparison loop, but each record is
//!    folded into its output segment's full [`SegMeasure`] during the
//!    partition pass (also in [`reference`]);
//! 3. **keyed** — the current generation (this module's `*_keyed*`
//!    functions): the partition scans two narrow, cache-resident columns
//!    maintained by [`crate::keys::KeyColumn`] — the **assignment-key
//!    column** (`keys[i] == key_of(&recs[i], dim, mode)`) it compares
//!    against the pivot, and the companion upper-bound column
//!    (`his[i] == recs[i].mbb.hi[dim]`) it folds bounding information from
//!    — and touches the wide records **only to swap misplaced pairs**.
//!    Instead of the full multi-dimensional [`SegMeasure`], the keyed
//!    kernels measure exactly what the engine consumes per output segment:
//!    a [`DimBounds`] on the crack dimension (the engine lazily computes an
//!    exact MBB only for the at-most-τ-sized segments that become refined
//!    slices, where the scan is cache-resident). Cf. Idreos et al.'s
//!    database cracking and Pirk et al.'s predicated "fancy scan" kernels.
//!
//! Every keyed kernel produces **the same permutation, split points and
//! measurements** as its record-streaming counterpart in [`reference`]
//! (permutations and split points bit-for-bit; measurements value-equal
//! min/max folds); `tests/keyed_kernels.rs` proves it property-based.

use crate::config::AssignBy;
use crate::simd::{self, SimdLevel};
use quasii_common::geom::{Aabb, Record};

/// The representative (assignment) coordinate of `r` on `dim`.
#[inline(always)]
pub fn key_of<const D: usize>(r: &Record<D>, dim: usize, mode: AssignBy) -> f64 {
    match mode {
        AssignBy::Lower => r.mbb.lo[dim],
        AssignBy::Center => 0.5 * (r.mbb.lo[dim] + r.mbb.hi[dim]),
        AssignBy::Upper => r.mbb.hi[dim],
    }
}

/// Per-dimension measurements of a record segment: the assignment-key
/// minimum (drives the sorted slice lists) and the actual spatial interval
/// (drives slice MBBs). This is exactly what the engine needs per crack
/// output segment that stays *unrefined* — the keyed kernels measure it
/// from the narrow columns during the partition pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DimBounds {
    /// Minimum assignment key over the segment (`+inf` when empty).
    pub min_key: f64,
    /// Minimum `lo[dim]` over the segment (`+inf` when empty).
    pub min_lo: f64,
    /// Maximum `hi[dim]` over the segment (`-inf` when empty).
    pub max_hi: f64,
}

impl DimBounds {
    /// Identity bounds of an empty segment.
    pub fn empty() -> Self {
        Self {
            min_key: f64::INFINITY,
            min_lo: f64::INFINITY,
            max_hi: f64::NEG_INFINITY,
        }
    }

    /// Folds one element's assignment key and upper bound in. Kept
    /// `inline(always)` and only ever called on fixed named locals so the
    /// accumulator stays in registers (an index-selected destination would
    /// force it into memory). `pub(crate)` so [`crate::simd`]'s scalar
    /// twins share the exact fold the oracle uses.
    #[inline(always)]
    pub(crate) fn fold_key_hi(&mut self, k: f64, h: f64) {
        if k < self.min_key {
            self.min_key = k;
        }
        if h > self.max_hi {
            self.max_hi = h;
        }
    }

    /// Folds one element's lower bound in (only needed by `Center`/`Upper`
    /// assignment, where the key is not the lower bound).
    #[inline(always)]
    fn fold_lo(&mut self, lo: f64) {
        if lo < self.min_lo {
            self.min_lo = lo;
        }
    }

    /// Measures a segment with a record-streaming scan (the oracle for the
    /// keyed kernels' in-pass measurements; also used by the rare rank-based
    /// fallback path).
    pub fn of<const D: usize>(seg: &[Record<D>], dim: usize, mode: AssignBy) -> Self {
        let mut b = Self::empty();
        for r in seg {
            let k = key_of(r, dim, mode);
            if k < b.min_key {
                b.min_key = k;
            }
            if r.mbb.lo[dim] < b.min_lo {
                b.min_lo = r.mbb.lo[dim];
            }
            if r.mbb.hi[dim] > b.max_hi {
                b.max_hi = r.mbb.hi[dim];
            }
        }
        b
    }
}

/// Full measurements of one crack output segment: the assignment-key
/// minimum plus the exact MBB over **all** dimensions. The fused
/// [`reference`] kernels accumulate this during their partition pass; the
/// current keyed engine instead measures [`DimBounds`] in-pass and derives
/// the exact MBB lazily (only for segments small enough to become refined).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SegMeasure<const D: usize> {
    /// Minimum assignment key over the segment (`+inf` when empty).
    pub min_key: f64,
    /// Exact MBB of the segment ([`Aabb::empty`] when empty).
    pub mbb: Aabb<D>,
}

impl<const D: usize> SegMeasure<D> {
    /// Identity measurement of an empty segment.
    pub fn empty() -> Self {
        Self {
            min_key: f64::INFINITY,
            mbb: Aabb::empty(),
        }
    }

    /// Folds one record in; `key` is its precomputed assignment key.
    #[inline(always)]
    fn add(&mut self, r: &Record<D>, key: f64) {
        if key < self.min_key {
            self.min_key = key;
        }
        self.mbb.expand(&r.mbb);
    }

    /// Measures a segment with a plain record scan.
    pub fn of(seg: &[Record<D>], dim: usize, mode: AssignBy) -> Self {
        let mut m = Self::empty();
        for r in seg {
            m.add(r, key_of(r, dim, mode));
        }
        m
    }

    /// The per-dimension view of this measurement.
    pub fn dim_bounds(&self, dim: usize) -> DimBounds {
        DimBounds {
            min_key: self.min_key,
            min_lo: self.mbb.lo[dim],
            max_hi: self.mbb.hi[dim],
        }
    }
}

// ---------------------------------------------------------------------------
// Keyed kernels — the engine's hot path. All of them operate on a
// `(keys, his, recs)` triple in lockstep: on entry `keys[i]` must equal
// `key_of(&recs[i], dim, mode)` and `his[i]` must equal
// `recs[i].mbb.hi[dim]` for the dimension being cracked, and the kernels
// preserve that correspondence (every record swap swaps the matching
// column entries).
// ---------------------------------------------------------------------------

/// Whether `min lo[dim]` must be folded from the records: in `Lower` mode
/// the assignment key *is* `lo[dim]`, so the minimum key doubles as the
/// minimum lower bound and untouched records are never read at all.
#[inline(always)]
fn folds_lo(mode: AssignBy) -> bool {
    mode != AssignBy::Lower
}

/// The one place a measuring kernel touches a record's MBB: folds
/// `recs[idx].mbb.lo[dim]` into `b` when the assignment mode requires it
/// (`Center`/`Upper`, where the key is not the lower bound). Shared by
/// the scalar oracle kernels and the chunked SIMD path so both load the
/// record exactly the same way; compiles to nothing when `!FOLD_LO`.
#[inline(always)]
fn fold_lo_at<const D: usize, const FOLD_LO: bool>(
    b: &mut DimBounds,
    recs: &[Record<D>],
    idx: usize,
    dim: usize,
) {
    if FOLD_LO {
        b.fold_lo(recs[idx].mbb.lo[dim]);
    }
}

/// Two-way keyed crack: reorders the `(keys, his, recs)` triple in lockstep
/// so entries with `key < pivot` precede the rest; returns the split point
/// (first index of the `>= pivot` part).
///
/// The scan compares only the 8-byte key column (a `Record<3>` is 56
/// bytes); the wide records are touched only when a misplaced pair must
/// swap. Produces bit-for-bit the same permutation and split point as
/// [`reference::crack_two`].
pub fn crack_two_keyed<const D: usize>(
    keys: &mut [f64],
    his: &mut [f64],
    recs: &mut [Record<D>],
    pivot: f64,
) -> usize {
    debug_assert!(keys.len() == recs.len() && his.len() == recs.len());
    let mut i = 0usize;
    let mut j = keys.len();
    loop {
        while i < j && keys[i] < pivot {
            i += 1;
        }
        while i < j && keys[j - 1] >= pivot {
            j -= 1;
        }
        if i + 1 >= j {
            break;
        }
        keys.swap(i, j - 1);
        his.swap(i, j - 1);
        recs.swap(i, j - 1);
        i += 1;
        j -= 1;
    }
    i
}

/// Measuring two-way keyed crack: same partition (and identical split
/// point) as [`crack_two_keyed`], additionally measuring both output
/// segments' [`DimBounds`] during the pass — min key and max upper bound
/// straight from the narrow columns (`FOLD_LO` additionally folds
/// `lo[dim]` from the records, needed for `Center`/`Upper` assignment
/// where the key is not the lower bound).
fn crack_two_keyed_measured_impl<const D: usize, const FOLD_LO: bool>(
    keys: &mut [f64],
    his: &mut [f64],
    recs: &mut [Record<D>],
    dim: usize,
    pivot: f64,
) -> (usize, DimBounds, DimBounds) {
    let mut left = DimBounds::empty();
    let mut right = DimBounds::empty();
    let mut i = 0usize;
    let mut j = keys.len();
    loop {
        // Scans run over zipped subslice iterators so the narrow-column
        // loads carry no per-element bounds check.
        for (&k, &h) in keys[i..j].iter().zip(his[i..j].iter()) {
            if k >= pivot {
                break;
            }
            left.fold_key_hi(k, h);
            fold_lo_at::<D, FOLD_LO>(&mut left, recs, i, dim);
            i += 1;
        }
        for (&k, &h) in keys[i..j].iter().zip(his[i..j].iter()).rev() {
            if k < pivot {
                break;
            }
            right.fold_key_hi(k, h);
            fold_lo_at::<D, FOLD_LO>(&mut right, recs, j - 1, dim);
            j -= 1;
        }
        if i + 1 >= j {
            break;
        }
        // Misplaced pair: recs[i] ends right, recs[j-1] ends left — fold
        // each into its final side, then swap the triple.
        right.fold_key_hi(keys[i], his[i]);
        left.fold_key_hi(keys[j - 1], his[j - 1]);
        fold_lo_at::<D, FOLD_LO>(&mut right, recs, i, dim);
        fold_lo_at::<D, FOLD_LO>(&mut left, recs, j - 1, dim);
        keys.swap(i, j - 1);
        his.swap(i, j - 1);
        recs.swap(i, j - 1);
        i += 1;
        j -= 1;
    }
    if !FOLD_LO {
        // Lower assignment: the key is the lower bound.
        left.min_lo = left.min_key;
        right.min_lo = right.min_key;
    }
    (i, left, right)
}

/// Chunked classify-then-swap two-way crack — the vectorized generation
/// of [`crack_two_keyed_measured_impl`]. Pass 1 classifies the key
/// column against the pivot with [`simd::classify_two`] (vector
/// compare + movemask count, min/max folds as vector reductions), which
/// pins the exact split point up front; pass 2 then runs the Hoare swap
/// loop bounded by that split, fast-forwarding both pointers with
/// vector scans ([`simd::ff_lt`] / [`simd::ff_ge_rev`]) and swapping
/// the same misplaced pairs, in the same order, as the scalar oracle —
/// the permutation and split point are bit-for-bit identical, the fold
/// results value-equal.
fn crack_two_keyed_chunked<const D: usize, const FOLD_LO: bool>(
    level: SimdLevel,
    keys: &mut [f64],
    his: &mut [f64],
    recs: &mut [Record<D>],
    dim: usize,
    pivot: f64,
) -> (usize, DimBounds, DimBounds) {
    let mut left = DimBounds::empty();
    let mut right = DimBounds::empty();
    let census = simd::classify_two(level, keys, his, pivot);
    left.fold_key_hi(census.l_min_key, census.l_max_hi);
    right.fold_key_hi(census.r_min_key, census.r_max_hi);
    if FOLD_LO {
        // Center/Upper assignment also needs min `lo[dim]` per side,
        // which lives in the wide records: one classified sweep through
        // the shared fold helper, before any swap disturbs positions.
        for (idx, &k) in keys.iter().enumerate() {
            if k < pivot {
                fold_lo_at::<D, FOLD_LO>(&mut left, recs, idx, dim);
            } else {
                fold_lo_at::<D, FOLD_LO>(&mut right, recs, idx, dim);
            }
        }
    }
    let split = census.count_lt;
    let mut i = 0usize;
    let mut j = keys.len();
    loop {
        i += simd::ff_lt(level, &keys[i..split], pivot);
        if i >= split {
            break;
        }
        // keys[i] is a misplaced `>= pivot`; by the split-count
        // invariant an equally-misplaced `< pivot` partner exists in
        // [split, j), so the backward fast-forward cannot run past it.
        j -= simd::ff_ge_rev(level, &keys[split..j], pivot);
        debug_assert!(j > split && keys[j - 1] < pivot);
        keys.swap(i, j - 1);
        his.swap(i, j - 1);
        recs.swap(i, j - 1);
        i += 1;
        j -= 1;
    }
    if !FOLD_LO {
        // Lower assignment: the key is the lower bound.
        left.min_lo = left.min_key;
        right.min_lo = right.min_key;
    }
    (split, left, right)
}

/// Measuring two-way keyed crack (see
/// [`crack_two_keyed`] for the partition contract): returns the split point
/// and both output segments' [`DimBounds`], measured from the narrow
/// columns during the pass. Identical permutation and split point to
/// [`reference::crack_two_measured`]; the measurements equal that kernel's
/// [`SegMeasure::dim_bounds`] view.
///
/// `level` selects the kernel generation: [`SimdLevel::Scalar`] runs the
/// swap-interleaved oracle loop, the vector levels run the chunked
/// classify-then-swap pass ([`crack_two_keyed_chunked`]) with identical
/// results.
pub fn crack_two_keyed_measured<const D: usize>(
    keys: &mut [f64],
    his: &mut [f64],
    recs: &mut [Record<D>],
    dim: usize,
    mode: AssignBy,
    pivot: f64,
    level: SimdLevel,
) -> (usize, DimBounds, DimBounds) {
    debug_assert!(keys.len() == recs.len() && his.len() == recs.len());
    match (level, folds_lo(mode)) {
        (SimdLevel::Scalar, true) => {
            crack_two_keyed_measured_impl::<D, true>(keys, his, recs, dim, pivot)
        }
        (SimdLevel::Scalar, false) => {
            crack_two_keyed_measured_impl::<D, false>(keys, his, recs, dim, pivot)
        }
        (lv, true) => crack_two_keyed_chunked::<D, true>(lv, keys, his, recs, dim, pivot),
        (lv, false) => crack_two_keyed_chunked::<D, false>(lv, keys, his, recs, dim, pivot),
    }
}

/// Consecutive middle-class elements the three-way kernels handle scalar
/// before engaging the vector middle-run scan. The `#[target_feature]`
/// vector bodies cannot inline into the kernel loop, so each engagement
/// pays a real call; runs shorter than this are cheaper scalar (random
/// segments have runs of 1–3 at typical range selectivities), while the
/// long runs of converging segments amortize it in the first lane-width.
const MID_RUN: usize = 8;

/// Three-way keyed crack (Dutch national flag): partitions the
/// `(keys, his, recs)` triple into `key < low` | `low <= key <= high` |
/// `key > high`; returns the two split points `(p1, p2)` so the middle part
/// is `p1..p2`. Identical permutation to [`reference::crack_three`].
///
/// The DNF swap chain is inherently sequential, so the vector levels keep
/// it scalar and vectorize the middle-run advance ([`simd::ff_middle`]) —
/// the dominant class once a segment converges. Middle elements never
/// swap, so the permutation stays bit-for-bit identical across levels.
pub fn crack_three_keyed<const D: usize>(
    keys: &mut [f64],
    his: &mut [f64],
    recs: &mut [Record<D>],
    low: f64,
    high: f64,
    level: SimdLevel,
) -> (usize, usize) {
    debug_assert!(keys.len() == recs.len() && his.len() == recs.len());
    debug_assert!(low <= high, "crack_three bounds inverted: {low} > {high}");
    let vector = level != SimdLevel::Scalar;
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = keys.len();
    // Consecutive middle-class elements seen scalar-side. The vector
    // fast-forward only engages once a run has proven long (≥ MID_RUN):
    // random segments have runs of a few elements, where the non-inlinable
    // vector call costs more than it saves; converged segments — the case
    // the fast-forward exists for — have long runs that amortize it.
    let mut mid_run = 0usize;
    while i < gt {
        let v = keys[i];
        if v < low {
            // Self-swaps (lt == i) are no-ops in the reference kernel too;
            // skipping them saves record traffic on ordered prefixes
            // without changing the permutation.
            if lt != i {
                keys.swap(lt, i);
                his.swap(lt, i);
                recs.swap(lt, i);
            }
            lt += 1;
            i += 1;
            mid_run = 0;
        } else if v > high {
            gt -= 1;
            keys.swap(i, gt);
            his.swap(i, gt);
            recs.swap(i, gt);
            mid_run = 0;
        } else {
            i += 1;
            mid_run += 1;
            if vector && mid_run >= MID_RUN && i < gt {
                i += simd::ff_middle(level, &keys[i..gt], low, high);
                mid_run = 0;
            }
        }
    }
    (lt, gt)
}

/// Measuring three-way keyed crack: same partition (and identical split
/// points) as [`crack_three_keyed`], measuring the three output segments'
/// [`DimBounds`] during the pass from the narrow columns.
fn crack_three_keyed_measured_impl<const D: usize, const FOLD_LO: bool>(
    keys: &mut [f64],
    his: &mut [f64],
    recs: &mut [Record<D>],
    dim: usize,
    low: f64,
    high: f64,
    level: SimdLevel,
) -> (usize, usize, [DimBounds; 3]) {
    // Three scalar accumulator sets with a fixed destination per branch arm
    // (an index-selected `m[region]` fold would force the accumulators into
    // memory instead of registers).
    let mut m0 = DimBounds::empty();
    let mut m1 = DimBounds::empty();
    let mut m2 = DimBounds::empty();
    let vector = level != SimdLevel::Scalar;
    let mut lt = 0usize;
    let mut i = 0usize;
    let mut gt = keys.len();
    while i < gt {
        // Fast-forward over a run of middle-class elements (no swap, fixed
        // fold destination) — the dominant class once a segment converges.
        // Vector levels scan the first MID_RUN elements of a run scalar
        // (short runs dominate unconverged segments, where the
        // non-inlinable vector call costs more than it saves) and advance
        // 4 (2) lanes per compare with vector min/max folds once the run
        // proves long; the scalar oracle keeps its zipped subslice
        // iterators so the narrow-column loads carry no per-element bounds
        // check.
        if vector {
            let mut run = 0usize;
            while i < gt {
                let k = keys[i];
                if k < low || k > high {
                    break;
                }
                m1.fold_key_hi(k, his[i]);
                fold_lo_at::<D, FOLD_LO>(&mut m1, recs, i, dim);
                i += 1;
                run += 1;
                if run >= MID_RUN && i < gt {
                    let adv =
                        simd::ff_middle_fold(level, &keys[i..gt], &his[i..gt], low, high, &mut m1);
                    if FOLD_LO {
                        for t in i..i + adv {
                            fold_lo_at::<D, FOLD_LO>(&mut m1, recs, t, dim);
                        }
                    }
                    i += adv;
                    // The vector scan stopped on a non-middle element (or
                    // the end of the range).
                    break;
                }
            }
        } else {
            for (&k, &h) in keys[i..gt].iter().zip(his[i..gt].iter()) {
                if k < low || k > high {
                    break;
                }
                m1.fold_key_hi(k, h);
                fold_lo_at::<D, FOLD_LO>(&mut m1, recs, i, dim);
                i += 1;
            }
        }
        if i >= gt {
            break;
        }
        let v = keys[i];
        if v < low {
            m0.fold_key_hi(v, his[i]);
            fold_lo_at::<D, FOLD_LO>(&mut m0, recs, i, dim);
            // Self-swaps (lt == i: no mid/high element seen yet) are no-ops
            // in the reference kernel too; skipping them saves the record
            // traffic on already-ordered prefixes without changing the
            // permutation.
            if lt != i {
                keys.swap(lt, i);
                his.swap(lt, i);
                recs.swap(lt, i);
            }
            lt += 1;
            i += 1;
        } else {
            // The fast-forward loop stopped on a non-middle element, so
            // here v > high.
            debug_assert!(v > high);
            m2.fold_key_hi(v, his[i]);
            fold_lo_at::<D, FOLD_LO>(&mut m2, recs, i, dim);
            gt -= 1;
            keys.swap(i, gt);
            his.swap(i, gt);
            recs.swap(i, gt);
        }
    }
    let mut m = [m0, m1, m2];
    if !FOLD_LO {
        for b in &mut m {
            b.min_lo = b.min_key;
        }
    }
    (lt, gt, m)
}

/// Measuring three-way keyed crack (see [`crack_three_keyed`] for the
/// partition contract): identical permutation and split points to
/// [`reference::crack_three_measured`]; the measurements equal that
/// kernel's [`SegMeasure::dim_bounds`] view.
#[allow(clippy::too_many_arguments)]
pub fn crack_three_keyed_measured<const D: usize>(
    keys: &mut [f64],
    his: &mut [f64],
    recs: &mut [Record<D>],
    dim: usize,
    mode: AssignBy,
    low: f64,
    high: f64,
    level: SimdLevel,
) -> (usize, usize, [DimBounds; 3]) {
    debug_assert!(keys.len() == recs.len() && his.len() == recs.len());
    debug_assert!(low <= high, "crack_three bounds inverted: {low} > {high}");
    if folds_lo(mode) {
        crack_three_keyed_measured_impl::<D, true>(keys, his, recs, dim, low, high, level)
    } else {
        crack_three_keyed_measured_impl::<D, false>(keys, his, recs, dim, low, high, level)
    }
}

/// Rank-based fallback split used when midpoint (value) splits cannot
/// separate a degenerate distribution: moves the median-by-key record into
/// place, rebuilds both columns for the permuted segment, and partitions
/// around the median key. Returns the split point, which may be `0` or
/// `recs.len()` when all keys are equal (caller must handle).
///
/// The record selection runs the exact comparator of
/// [`reference::crack_median`], so the permutation (and therefore the whole
/// engine state) stays bit-for-bit identical to the record-streaming
/// oracle. This path is rare (degenerate value distributions only), so the
/// extra re-keying scan does not matter.
pub fn crack_median_keyed<const D: usize>(
    keys: &mut [f64],
    his: &mut [f64],
    recs: &mut [Record<D>],
    dim: usize,
    mode: AssignBy,
) -> usize {
    debug_assert!(keys.len() == recs.len() && his.len() == recs.len());
    if recs.len() < 2 {
        return recs.len();
    }
    let mid = recs.len() / 2;
    recs.select_nth_unstable_by(mid, |a, b| {
        key_of(a, dim, mode)
            .partial_cmp(&key_of(b, dim, mode))
            .expect("coordinates are never NaN")
    });
    // The selection permuted the records without the columns: re-key.
    crate::keys::rekey(keys, his, recs, dim, mode);
    let pivot = keys[mid];
    // Partition strictly below the median value; if everything is equal to
    // the pivot this yields 0 and the caller treats the slice as
    // value-indivisible.
    crack_two_keyed(keys, his, recs, pivot)
}

/// Measuring rank-based fallback split: same permutation and split point as
/// [`crack_median_keyed`], additionally measuring both output segments'
/// [`DimBounds`] during the final partition pass — so the engine's
/// artificial-refinement fallback no longer re-scans both halves with
/// [`DimBounds::of`] after the kernel already walked the columns.
///
/// The measurements are only meaningful when `0 < split < recs.len()`; on a
/// degenerate (value-indivisible or sub-2-element) segment the caller
/// force-refines and never reads them.
pub fn crack_median_keyed_measured<const D: usize>(
    keys: &mut [f64],
    his: &mut [f64],
    recs: &mut [Record<D>],
    dim: usize,
    mode: AssignBy,
    level: SimdLevel,
) -> (usize, DimBounds, DimBounds) {
    debug_assert!(keys.len() == recs.len() && his.len() == recs.len());
    if recs.len() < 2 {
        return (recs.len(), DimBounds::empty(), DimBounds::empty());
    }
    let mid = recs.len() / 2;
    recs.select_nth_unstable_by(mid, |a, b| {
        key_of(a, dim, mode)
            .partial_cmp(&key_of(b, dim, mode))
            .expect("coordinates are never NaN")
    });
    // The selection permuted the records without the columns: re-key.
    crate::keys::rekey(keys, his, recs, dim, mode);
    let pivot = keys[mid];
    crack_two_keyed_measured(keys, his, recs, dim, mode, pivot, level)
}

/// The record-streaming kernel generations (pre-key-column), kept as the
/// bit-for-bit oracle for the keyed kernels and as the baseline side of the
/// `benches/kernels.rs` keyed-vs-record-streaming comparison. Not used on
/// the engine's query path.
pub mod reference {
    use super::{key_of, SegMeasure};
    use crate::config::AssignBy;
    use quasii_common::geom::Record;

    /// Two-way crack: reorders `seg` so records with `key < pivot` precede
    /// the rest; returns the split point (first index of the `>= pivot`
    /// part).
    ///
    /// Hoare-style two-pointer pass — the classic database-cracking kernel,
    /// recomputing `key_of` on every probe.
    pub fn crack_two<const D: usize>(
        seg: &mut [Record<D>],
        dim: usize,
        mode: AssignBy,
        pivot: f64,
    ) -> usize {
        let mut i = 0usize;
        let mut j = seg.len();
        loop {
            while i < j && key_of(&seg[i], dim, mode) < pivot {
                i += 1;
            }
            while i < j && key_of(&seg[j - 1], dim, mode) >= pivot {
                j -= 1;
            }
            if i + 1 >= j {
                break;
            }
            seg.swap(i, j - 1);
            i += 1;
            j -= 1;
        }
        i
    }

    /// Fused two-way crack: same partition (and identical split point) as
    /// [`crack_two`], but additionally measures both output segments
    /// *during* the pass. Every record is folded into its final side's
    /// [`SegMeasure`] exactly once, at the moment the partition decides
    /// where it lands.
    pub fn crack_two_measured<const D: usize>(
        seg: &mut [Record<D>],
        dim: usize,
        mode: AssignBy,
        pivot: f64,
    ) -> (usize, SegMeasure<D>, SegMeasure<D>) {
        let mut left = SegMeasure::empty();
        let mut right = SegMeasure::empty();
        let mut i = 0usize;
        let mut j = seg.len();
        loop {
            // `ki`/`kj` carry the key each scan stopped on, so the swap
            // branch below does not recompute them.
            let mut ki = f64::NAN;
            while i < j {
                let k = key_of(&seg[i], dim, mode);
                if k >= pivot {
                    ki = k;
                    break;
                }
                left.add(&seg[i], k);
                i += 1;
            }
            let mut kj = f64::NAN;
            while i < j {
                let k = key_of(&seg[j - 1], dim, mode);
                if k < pivot {
                    kj = k;
                    break;
                }
                right.add(&seg[j - 1], k);
                j -= 1;
            }
            if i + 1 >= j {
                break;
            }
            // Both scans stopped on a misplaced pair (i + 1 < j implies
            // neither exhausted the range, so ki/kj are set): seg[i] belongs
            // right, seg[j-1] belongs left. Measure both on their final
            // side, swap.
            debug_assert!(!ki.is_nan() && !kj.is_nan());
            right.add(&seg[i], ki);
            left.add(&seg[j - 1], kj);
            seg.swap(i, j - 1);
            i += 1;
            j -= 1;
        }
        (i, left, right)
    }

    /// Three-way crack (Dutch national flag): partitions `seg` into
    /// `key < low` | `low <= key <= high` | `key > high`; returns the two
    /// split points `(p1, p2)` so the middle part is `p1..p2`.
    pub fn crack_three<const D: usize>(
        seg: &mut [Record<D>],
        dim: usize,
        mode: AssignBy,
        low: f64,
        high: f64,
    ) -> (usize, usize) {
        debug_assert!(low <= high, "crack_three bounds inverted: {low} > {high}");
        let mut lt = 0usize;
        let mut i = 0usize;
        let mut gt = seg.len();
        while i < gt {
            let v = key_of(&seg[i], dim, mode);
            if v < low {
                seg.swap(lt, i);
                lt += 1;
                i += 1;
            } else if v > high {
                gt -= 1;
                seg.swap(i, gt);
            } else {
                i += 1;
            }
        }
        (lt, gt)
    }

    /// Fused three-way crack: same partition (and identical split points)
    /// as [`crack_three`], measuring the three output segments during the
    /// pass.
    pub fn crack_three_measured<const D: usize>(
        seg: &mut [Record<D>],
        dim: usize,
        mode: AssignBy,
        low: f64,
        high: f64,
    ) -> (usize, usize, [SegMeasure<D>; 3]) {
        debug_assert!(low <= high, "crack_three bounds inverted: {low} > {high}");
        let mut m = [SegMeasure::empty(); 3];
        let mut lt = 0usize;
        let mut i = 0usize;
        let mut gt = seg.len();
        while i < gt {
            let v = key_of(&seg[i], dim, mode);
            if v < low {
                m[0].add(&seg[i], v);
                seg.swap(lt, i);
                lt += 1;
                i += 1;
            } else if v > high {
                m[2].add(&seg[i], v);
                gt -= 1;
                seg.swap(i, gt);
            } else {
                m[1].add(&seg[i], v);
                i += 1;
            }
        }
        (lt, gt, m)
    }

    /// Rank-based fallback split used when midpoint (value) splits cannot
    /// separate a degenerate distribution: moves the median-by-key value
    /// into place and partitions around it. Returns the split point, which
    /// may be `0` or `seg.len()` when all keys are equal (caller must
    /// handle).
    pub fn crack_median<const D: usize>(
        seg: &mut [Record<D>],
        dim: usize,
        mode: AssignBy,
    ) -> usize {
        if seg.len() < 2 {
            return seg.len();
        }
        let mid = seg.len() / 2;
        seg.select_nth_unstable_by(mid, |a, b| {
            key_of(a, dim, mode)
                .partial_cmp(&key_of(b, dim, mode))
                .expect("coordinates are never NaN")
        });
        let pivot = key_of(&seg[mid], dim, mode);
        // Partition strictly below the median value; if everything is equal
        // to the pivot this yields 0 and the caller treats the slice as
        // value-indivisible.
        crack_two(seg, dim, mode, pivot)
    }
}

#[cfg(test)]
mod tests {
    use super::reference::{
        crack_median, crack_three, crack_three_measured, crack_two, crack_two_measured,
    };
    use super::*;
    use crate::keys::rekey;
    use quasii_common::geom::Aabb;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    const LOWER: AssignBy = AssignBy::Lower;
    const ALL_LEVELS: [SimdLevel; 3] = [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2];

    fn rec1(lo: f64, hi: f64) -> Record<1> {
        Record::new(0, Aabb::new([lo], [hi]))
    }

    fn keys(seg: &[Record<1>]) -> Vec<f64> {
        seg.iter().map(|r| r.mbb.lo[0]).collect()
    }

    fn random_segment(n: usize, seed: u64) -> Vec<Record<1>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|id| {
                let lo: f64 = rng.random_range(0.0..100.0);
                Record::new(
                    id as u64,
                    Aabb::new([lo], [lo + rng.random_range(0.0..5.0)]),
                )
            })
            .collect()
    }

    /// Builds the column pair of a segment.
    fn columns_of<const D: usize>(
        seg: &[Record<D>],
        dim: usize,
        mode: AssignBy,
    ) -> (Vec<f64>, Vec<f64>) {
        let mut k = vec![0.0; seg.len()];
        let mut h = vec![0.0; seg.len()];
        rekey(&mut k, &mut h, seg, dim, mode);
        (k, h)
    }

    #[test]
    fn key_of_each_mode() {
        let r = rec1(2.0, 6.0);
        assert_eq!(key_of(&r, 0, AssignBy::Lower), 2.0);
        assert_eq!(key_of(&r, 0, AssignBy::Center), 4.0);
        assert_eq!(key_of(&r, 0, AssignBy::Upper), 6.0);
    }

    #[test]
    fn two_way_partitions_correctly() {
        let mut seg = random_segment(500, 1);
        let before: Vec<u64> = {
            let mut ids: Vec<u64> = seg.iter().map(|r| r.id).collect();
            ids.sort_unstable();
            ids
        };
        let p = crack_two(&mut seg, 0, LOWER, 50.0);
        assert!(seg[..p].iter().all(|r| r.mbb.lo[0] < 50.0));
        assert!(seg[p..].iter().all(|r| r.mbb.lo[0] >= 50.0));
        // Permutation check: no record lost or duplicated.
        let mut after: Vec<u64> = seg.iter().map(|r| r.id).collect();
        after.sort_unstable();
        assert_eq!(before, after);
    }

    #[test]
    fn two_way_respects_assignment_mode() {
        let mut seg = vec![rec1(0.0, 10.0), rec1(4.0, 6.0), rec1(9.0, 9.5)];
        // Centers: 5.0, 5.0, 9.25. Pivot 5.5 → two centers below.
        let p = crack_two(&mut seg, 0, AssignBy::Center, 5.5);
        assert_eq!(p, 2);
        // Uppers: 10.0, 6.0, 9.5. Pivot 9.6 → one upper below (6.0), plus 9.5.
        let mut seg = vec![rec1(0.0, 10.0), rec1(4.0, 6.0), rec1(9.0, 9.5)];
        let p = crack_two(&mut seg, 0, AssignBy::Upper, 9.6);
        assert_eq!(p, 2);
    }

    #[test]
    fn two_way_extremes() {
        let mut seg = random_segment(50, 2);
        assert_eq!(crack_two(&mut seg, 0, LOWER, -1.0), 0);
        assert_eq!(crack_two(&mut seg, 0, LOWER, 1000.0), 50);
        let mut empty: Vec<Record<1>> = vec![];
        assert_eq!(crack_two(&mut empty, 0, LOWER, 0.0), 0);
        let mut one = vec![rec1(5.0, 6.0)];
        assert_eq!(
            crack_two(&mut one, 0, LOWER, 5.0),
            0,
            "pivot == key goes right"
        );
        assert_eq!(crack_two(&mut one, 0, LOWER, 5.1), 1);
    }

    #[test]
    fn two_way_all_equal_keys() {
        let mut seg: Vec<Record<1>> = (0..10).map(|_| rec1(7.0, 8.0)).collect();
        assert_eq!(crack_two(&mut seg, 0, LOWER, 7.0), 0);
        assert_eq!(crack_two(&mut seg, 0, LOWER, 7.5), 10);
    }

    #[test]
    fn three_way_partitions_correctly() {
        let mut seg = random_segment(1000, 3);
        let (p1, p2) = crack_three(&mut seg, 0, LOWER, 25.0, 75.0);
        assert!(seg[..p1].iter().all(|r| r.mbb.lo[0] < 25.0));
        assert!(seg[p1..p2]
            .iter()
            .all(|r| (25.0..=75.0).contains(&r.mbb.lo[0])));
        assert!(seg[p2..].iter().all(|r| r.mbb.lo[0] > 75.0));
        // All three parts non-empty at this size with uniform keys.
        assert!(p1 > 0 && p2 > p1 && p2 < seg.len());
    }

    #[test]
    fn three_way_boundary_values_go_to_middle() {
        let mut seg = vec![rec1(25.0, 26.0), rec1(75.0, 76.0), rec1(24.999, 25.0)];
        let (p1, p2) = crack_three(&mut seg, 0, LOWER, 25.0, 75.0);
        assert_eq!((p1, p2), (1, 3));
        assert_eq!(keys(&seg)[0], 24.999);
    }

    #[test]
    fn three_way_degenerate_ranges() {
        let mut seg = random_segment(100, 4);
        // low == high: middle contains exactly the records with that key.
        let (p1, p2) = crack_three(&mut seg, 0, LOWER, 50.0, 50.0);
        assert!(seg[p1..p2].iter().all(|r| r.mbb.lo[0] == 50.0));
        // Range outside the data: everything in one side.
        let (p1, p2) = crack_three(&mut seg, 0, LOWER, -10.0, -5.0);
        assert_eq!((p1, p2), (0, 0));
        let (p1, p2) = crack_three(&mut seg, 0, LOWER, 1e6, 2e6);
        assert_eq!((p1, p2), (100, 100));
    }

    #[test]
    fn three_way_preserves_multiset() {
        let mut seg = random_segment(777, 5);
        let mut before = keys(&seg);
        before.sort_by(f64::total_cmp);
        crack_three(&mut seg, 0, LOWER, 30.0, 60.0);
        let mut after = keys(&seg);
        after.sort_by(f64::total_cmp);
        assert_eq!(before, after);
    }

    #[test]
    fn median_splits_non_degenerate_data() {
        let mut seg = random_segment(101, 6);
        let p = crack_median(&mut seg, 0, LOWER);
        assert!(p > 0 && p < seg.len(), "median split must be interior");
        let max_left = seg[..p]
            .iter()
            .map(|r| r.mbb.lo[0])
            .fold(f64::NEG_INFINITY, f64::max);
        let min_right = seg[p..]
            .iter()
            .map(|r| r.mbb.lo[0])
            .fold(f64::INFINITY, f64::min);
        assert!(max_left < min_right);
        // Roughly balanced.
        assert!(p >= seg.len() / 4 && p <= 3 * seg.len() / 4);
    }

    #[test]
    fn median_on_all_equal_returns_degenerate_zero() {
        let mut seg: Vec<Record<1>> = (0..9).map(|_| rec1(3.0, 4.0)).collect();
        assert_eq!(crack_median(&mut seg, 0, LOWER), 0);
    }

    #[test]
    fn dim_bounds_measures_interval_and_key() {
        let seg = vec![rec1(1.0, 9.0), rec1(4.0, 5.0), rec1(0.5, 2.0)];
        let b = DimBounds::of(&seg, 0, LOWER);
        assert_eq!(b.min_lo, 0.5);
        assert_eq!(b.max_hi, 9.0);
        assert_eq!(b.min_key, 0.5);
        // Centers: 5.0, 4.5, 1.25 → min key 1.25.
        let c = DimBounds::of(&seg, 0, AssignBy::Center);
        assert_eq!(c.min_key, 1.25);
        let e = DimBounds::of::<1>(&[], 0, LOWER);
        assert!(e.min_lo.is_infinite() && e.max_hi.is_infinite());
    }

    /// Reference measurement: plain scans over the already-partitioned data.
    fn measure_ref(seg: &[Record<3>], mode: AssignBy) -> SegMeasure<3> {
        SegMeasure::of(seg, 0, mode)
    }

    fn random_segment3(n: usize, seed: u64) -> Vec<Record<3>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|id| {
                let mut lo = [0.0; 3];
                let mut hi = [0.0; 3];
                for k in 0..3 {
                    lo[k] = rng.random_range(0.0..100.0);
                    hi[k] = lo[k] + rng.random_range(0.0..8.0);
                }
                Record::new(id as u64, Aabb::new(lo, hi))
            })
            .collect()
    }

    #[test]
    fn fused_two_way_matches_split_passes() {
        for mode in [AssignBy::Lower, AssignBy::Center, AssignBy::Upper] {
            for (seed, pivot) in [(11, 50.0), (12, 0.0), (13, 200.0), (14, 97.5)] {
                let mut fused = random_segment3(500, seed);
                let mut plain = fused.clone();
                let (p, left, right) = crack_two_measured(&mut fused, 0, mode, pivot);
                let p_ref = crack_two(&mut plain, 0, mode, pivot);
                assert_eq!(p, p_ref, "split point diverged (mode {mode:?})");
                let ids = |s: &[Record<3>]| s.iter().map(|r| r.id).collect::<Vec<_>>();
                // Same partition contents (the physical order inside each
                // side is identical: both kernels do the same swaps).
                assert_eq!(ids(&fused), ids(&plain));
                assert_eq!(left, measure_ref(&fused[..p], mode));
                assert_eq!(right, measure_ref(&fused[p..], mode));
                assert_eq!(
                    left.dim_bounds(0),
                    DimBounds::of(&fused[..p], 0, mode),
                    "DimBounds view must match the unfused measurement"
                );
            }
        }
    }

    #[test]
    fn fused_three_way_matches_split_passes() {
        for mode in [AssignBy::Lower, AssignBy::Center, AssignBy::Upper] {
            for (seed, lo, hi) in [(21, 25.0, 75.0), (22, 50.0, 50.0), (23, -5.0, -1.0)] {
                let mut fused = random_segment3(700, seed);
                let mut plain = fused.clone();
                let (p1, p2, m) = crack_three_measured(&mut fused, 0, mode, lo, hi);
                let (r1, r2) = crack_three(&mut plain, 0, mode, lo, hi);
                assert_eq!((p1, p2), (r1, r2), "split points diverged");
                let ids = |s: &[Record<3>]| s.iter().map(|r| r.id).collect::<Vec<_>>();
                assert_eq!(ids(&fused), ids(&plain));
                assert_eq!(m[0], measure_ref(&fused[..p1], mode));
                assert_eq!(m[1], measure_ref(&fused[p1..p2], mode));
                assert_eq!(m[2], measure_ref(&fused[p2..], mode));
            }
        }
    }

    #[test]
    fn fused_kernels_handle_empty_and_degenerate_segments() {
        let mut empty: Vec<Record<3>> = vec![];
        let (p, l, r) = crack_two_measured(&mut empty, 0, AssignBy::Lower, 1.0);
        assert_eq!(p, 0);
        assert_eq!(l, SegMeasure::empty());
        assert_eq!(r, SegMeasure::empty());
        let (p1, p2, m) = crack_three_measured(&mut empty, 0, AssignBy::Lower, 0.0, 1.0);
        assert_eq!((p1, p2), (0, 0));
        assert!(m.iter().all(|x| *x == SegMeasure::empty()));

        // All keys equal: everything lands on one side, the other is empty.
        let mut same: Vec<Record<3>> = (0..10)
            .map(|i| Record::new(i, Aabb::new([7.0; 3], [8.0; 3])))
            .collect();
        let (p, l, r) = crack_two_measured(&mut same, 0, AssignBy::Lower, 7.0);
        assert_eq!(p, 0);
        assert_eq!(l, SegMeasure::empty());
        assert_eq!(r.min_key, 7.0);
        assert_eq!(r.mbb, Aabb::new([7.0; 3], [8.0; 3]));
    }

    #[test]
    fn cracks_work_on_higher_dims() {
        let mut seg: Vec<Record<3>> = (0..200)
            .map(|i| {
                let v = (i as f64 * 7.3) % 50.0;
                Record::new(i as u64, Aabb::new([0.0, v, 0.0], [1.0, v + 1.0, 1.0]))
            })
            .collect();
        let p = crack_two(&mut seg, 1, LOWER, 25.0);
        assert!(seg[..p].iter().all(|r| r.mbb.lo[1] < 25.0));
        assert!(seg[p..].iter().all(|r| r.mbb.lo[1] >= 25.0));
    }

    // -- keyed kernels ≡ record-streaming oracle (spot checks; the deep
    //    property suite lives in tests/keyed_kernels.rs) ------------------

    /// Asserts the `(keys, his, recs)` triple is still in lockstep.
    fn assert_columns_consistent<const D: usize>(
        keys: &[f64],
        his: &[f64],
        recs: &[Record<D>],
        dim: usize,
        mode: AssignBy,
    ) {
        for ((k, h), r) in keys.iter().zip(his).zip(recs) {
            assert_eq!(*k, key_of(r, dim, mode), "key column out of lockstep");
            assert_eq!(*h, r.mbb.hi[dim], "upper-bound column out of lockstep");
        }
    }

    #[test]
    fn keyed_two_way_matches_reference() {
        for level in ALL_LEVELS {
            for mode in [AssignBy::Lower, AssignBy::Center, AssignBy::Upper] {
                for (seed, pivot) in [(31, 50.0), (32, 0.0), (33, 200.0), (34, 97.5)] {
                    for dim in [0usize, 2] {
                        let mut keyed = random_segment3(501, seed);
                        let (mut ck, mut ch) = columns_of(&keyed, dim, mode);
                        let mut plain = keyed.clone();
                        let (p, l, r) = crack_two_keyed_measured(
                            &mut ck, &mut ch, &mut keyed, dim, mode, pivot, level,
                        );
                        let (p_ref, l_ref, r_ref) =
                            crack_two_measured(&mut plain, dim, mode, pivot);
                        assert_eq!(p, p_ref, "split ({level:?}, mode {mode:?}, dim {dim})");
                        assert_eq!(
                            keyed, plain,
                            "permutation ({level:?}, mode {mode:?}, dim {dim})"
                        );
                        assert_eq!(l, l_ref.dim_bounds(dim), "left bounds ({level:?} {mode:?})");
                        assert_eq!(
                            r,
                            r_ref.dim_bounds(dim),
                            "right bounds ({level:?} {mode:?})"
                        );
                        assert_columns_consistent(&ck, &ch, &keyed, dim, mode);

                        // Unmeasured variant: identical partition too.
                        let mut keyed2 = plain.clone();
                        let (mut ck2, mut ch2) = columns_of(&keyed2, dim, mode);
                        // plain is already partitioned; re-run both on the
                        // partitioned input to exercise the sorted edge case.
                        let p2 = crack_two_keyed(&mut ck2, &mut ch2, &mut keyed2, pivot);
                        let p2_ref = crack_two(&mut plain, dim, mode, pivot);
                        assert_eq!(p2, p2_ref);
                        assert_eq!(keyed2, plain);
                    }
                }
            }
        }
    }

    #[test]
    fn keyed_three_way_matches_reference() {
        for level in ALL_LEVELS {
            for mode in [AssignBy::Lower, AssignBy::Center, AssignBy::Upper] {
                for (seed, lo, hi) in [(41, 25.0, 75.0), (42, 50.0, 50.0), (43, -5.0, -1.0)] {
                    let mut keyed = random_segment3(700, seed);
                    let (mut ck, mut ch) = columns_of(&keyed, 1, mode);
                    let mut plain = keyed.clone();
                    let (p1, p2, m) = crack_three_keyed_measured(
                        &mut ck, &mut ch, &mut keyed, 1, mode, lo, hi, level,
                    );
                    let (r1, r2, m_ref) = crack_three_measured(&mut plain, 1, mode, lo, hi);
                    assert_eq!((p1, p2), (r1, r2), "{level:?}");
                    assert_eq!(keyed, plain, "{level:?}");
                    for (got, want) in m.iter().zip(&m_ref) {
                        assert_eq!(*got, want.dim_bounds(1), "bounds ({level:?} {mode:?})");
                    }
                    assert_columns_consistent(&ck, &ch, &keyed, 1, mode);

                    let mut keyed2 = plain.clone();
                    let (mut ck2, mut ch2) = columns_of(&keyed2, 1, mode);
                    let (q1, q2) =
                        crack_three_keyed(&mut ck2, &mut ch2, &mut keyed2, lo, hi, level);
                    let (s1, s2) = crack_three(&mut plain, 1, mode, lo, hi);
                    assert_eq!((q1, q2), (s1, s2), "{level:?}");
                    assert_eq!(keyed2, plain, "{level:?}");
                }
            }
        }
    }

    #[test]
    fn keyed_median_matches_reference() {
        for mode in [AssignBy::Lower, AssignBy::Center] {
            let mut keyed = random_segment3(101, 51);
            let (mut ck, mut ch) = columns_of(&keyed, 0, mode);
            let mut plain = keyed.clone();
            let p = crack_median_keyed(&mut ck, &mut ch, &mut keyed, 0, mode);
            let p_ref = crack_median(&mut plain, 0, mode);
            assert_eq!(p, p_ref);
            assert_eq!(keyed, plain);
            assert_columns_consistent(&ck, &ch, &keyed, 0, mode);
        }
        // Degenerate: all equal → 0; tiny segments return their length.
        let mut same: Vec<Record<3>> = (0..9)
            .map(|i| Record::new(i, Aabb::new([3.0; 3], [4.0; 3])))
            .collect();
        let (mut ck, mut ch) = columns_of(&same, 0, LOWER);
        assert_eq!(crack_median_keyed(&mut ck, &mut ch, &mut same, 0, LOWER), 0);
        let mut one = vec![Record::new(0, Aabb::new([1.0; 3], [2.0; 3]))];
        let (mut ck1, mut ch1) = columns_of(&one, 0, LOWER);
        assert_eq!(
            crack_median_keyed(&mut ck1, &mut ch1, &mut one, 0, LOWER),
            1
        );
    }

    #[test]
    fn measured_median_matches_unmeasured_and_rescan_oracle() {
        // Same permutation and split point as the unmeasured kernel, and
        // the in-pass measurements value-equal a `DimBounds::of` re-scan of
        // each half — exactly what the engine's rank fallback consumed
        // before the kernel returned them.
        for (mode, dim, seed) in [
            (AssignBy::Lower, 0, 61),
            (AssignBy::Center, 1, 62),
            (AssignBy::Upper, 2, 63),
        ] {
            let mut measured = random_segment3(137, seed);
            let (mut mk, mut mh) = columns_of(&measured, dim, mode);
            let mut plain = measured.clone();
            let (mut pk, mut ph) = columns_of(&plain, dim, mode);

            let (p, lm, rm) = crack_median_keyed_measured(
                &mut mk,
                &mut mh,
                &mut measured,
                dim,
                mode,
                SimdLevel::detect(),
            );
            let p_ref = crack_median_keyed(&mut pk, &mut ph, &mut plain, dim, mode);
            assert_eq!(p, p_ref, "{mode:?}");
            assert_eq!(measured, plain, "{mode:?}: permutation diverged");
            assert_columns_consistent(&mk, &mh, &measured, dim, mode);
            assert!(
                0 < p && p < measured.len(),
                "non-degenerate by construction"
            );
            assert_eq!(lm, DimBounds::of(&measured[..p], dim, mode), "{mode:?}");
            assert_eq!(rm, DimBounds::of(&measured[p..], dim, mode), "{mode:?}");
        }
        // Degenerate inputs report their split like the unmeasured kernel
        // (measurements are unspecified there and unread by the caller).
        let mut same: Vec<Record<3>> = (0..9)
            .map(|i| Record::new(i, Aabb::new([3.0; 3], [4.0; 3])))
            .collect();
        let lv = SimdLevel::detect();
        let (mut ck, mut ch) = columns_of(&same, 0, LOWER);
        let (p, _, _) = crack_median_keyed_measured(&mut ck, &mut ch, &mut same, 0, LOWER, lv);
        assert_eq!(p, 0);
        let mut one = vec![Record::new(0, Aabb::new([1.0; 3], [2.0; 3]))];
        let (mut ck1, mut ch1) = columns_of(&one, 0, LOWER);
        let (p, _, _) = crack_median_keyed_measured(&mut ck1, &mut ch1, &mut one, 0, LOWER, lv);
        assert_eq!(p, 1);
        let mut empty: Vec<Record<3>> = vec![];
        let (mut ck0, mut ch0) = columns_of(&empty, 0, LOWER);
        let (p, l, r) = crack_median_keyed_measured(&mut ck0, &mut ch0, &mut empty, 0, LOWER, lv);
        assert_eq!((p, l, r), (0, DimBounds::empty(), DimBounds::empty()));
    }

    #[test]
    fn keyed_kernels_handle_empty_segments() {
        for level in ALL_LEVELS {
            let mut keys: Vec<f64> = vec![];
            let mut his: Vec<f64> = vec![];
            let mut recs: Vec<Record<3>> = vec![];
            assert_eq!(crack_two_keyed(&mut keys, &mut his, &mut recs, 1.0), 0);
            let (p, l, r) =
                crack_two_keyed_measured(&mut keys, &mut his, &mut recs, 0, LOWER, 1.0, level);
            assert_eq!(p, 0);
            assert_eq!((l, r), (DimBounds::empty(), DimBounds::empty()));
            let (p1, p2, m) = crack_three_keyed_measured(
                &mut keys, &mut his, &mut recs, 0, LOWER, 0.0, 1.0, level,
            );
            assert_eq!((p1, p2), (0, 0));
            assert!(m.iter().all(|x| *x == DimBounds::empty()));
            assert_eq!(
                crack_median_keyed(&mut keys, &mut his, &mut recs, 0, LOWER),
                0
            );
        }
    }
}
