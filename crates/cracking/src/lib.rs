//! # quasii-cracking
//!
//! One-dimensional **database cracking** (Idreos, Kersten, Manegold; CIDR
//! 2007) — the technique QUASII generalizes to the spatial domain. The
//! paper's §3.1 recaps it: "cracking rearranges elements in an array
//! according to the end points of the query range (ql, qu): all values
//! < ql are moved towards the beginning of the array, while values > qu are
//! moved towards the end. With each query, the index becomes more refined
//! until it is fully sorted."
//!
//! Two engines are provided:
//!
//! * [`CrackEngine::Standard`] — crack exactly at the query bounds;
//! * [`CrackEngine::Stochastic`] — *DDC* (data-driven center) from
//!   stochastic cracking (Halim, Idreos, Karras, Yap; VLDB 2012, the
//!   paper's \[16\]): each crack additionally splits oversized pieces at
//!   their domain centers, defending against sequential query patterns that
//!   leave standard cracking with O(n) pieces for thousands of queries.
//!
//! The cracker index is a sorted vector of `(value, position)` boundaries —
//! all keys `< value` live left of `position`.

#![warn(missing_docs)]

/// Cracking strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrackEngine {
    /// Crack only at query bounds (original database cracking).
    Standard,
    /// DDC stochastic cracking: also split pieces larger than the given
    /// threshold at their value-domain center, recursively.
    Stochastic {
        /// Piece-size threshold below which no extra center splits happen.
        threshold: usize,
    },
}

/// Work counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrackStats {
    /// Range queries executed.
    pub queries: u64,
    /// Crack (partition) passes performed.
    pub cracks: u64,
    /// Elements touched across all crack passes.
    pub touched: u64,
}

/// A crackable column of `(key, row-id)` pairs.
#[derive(Clone, Debug)]
pub struct CrackerColumn {
    items: Vec<(f64, u64)>,
    /// Sorted crack boundaries `(value, position)`: keys `< value` are left
    /// of `position`. The in-memory analogue of cracking's AVL index.
    bounds: Vec<(f64, usize)>,
    engine: CrackEngine,
    stats: CrackStats,
}

impl CrackerColumn {
    /// Wraps a column; O(1) — no sorting happens up front.
    pub fn new(items: Vec<(f64, u64)>, engine: CrackEngine) -> Self {
        Self {
            items,
            bounds: Vec::new(),
            engine,
            stats: CrackStats::default(),
        }
    }

    /// Convenience constructor from bare keys (row id = position).
    pub fn from_keys(keys: impl IntoIterator<Item = f64>, engine: CrackEngine) -> Self {
        let items = keys
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, i as u64))
            .collect();
        Self::new(items, engine)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Work counters so far.
    pub fn stats(&self) -> CrackStats {
        self.stats
    }

    /// Number of crack boundaries (pieces − 1).
    pub fn crack_count(&self) -> usize {
        self.bounds.len()
    }

    /// Size of the largest uncracked piece — the metric stochastic cracking
    /// improves under adversarial (sequential) workloads.
    pub fn largest_piece(&self) -> usize {
        let mut prev = 0usize;
        let mut max = 0usize;
        for &(_, p) in &self.bounds {
            max = max.max(p - prev);
            prev = p;
        }
        max.max(self.items.len() - prev)
    }

    /// Half-open range query `[lo, hi)`: cracks at both bounds, then scans
    /// the (now contiguous) qualifying piece. Row ids are appended to `out`.
    pub fn range_query(&mut self, lo: f64, hi: f64, out: &mut Vec<u64>) {
        self.stats.queries += 1;
        if self.items.is_empty() || lo >= hi {
            return;
        }
        let a = self.crack_at(lo, 0);
        let b = self.crack_at(hi, 0);
        for &(_, row) in &self.items[a..b] {
            out.push(row);
        }
    }

    /// Allocating wrapper around [`range_query`](Self::range_query).
    pub fn range_query_collect(&mut self, lo: f64, hi: f64) -> Vec<u64> {
        let mut out = Vec::new();
        self.range_query(lo, hi, &mut out);
        out
    }

    /// Position of the boundary for value `v`, cracking the enclosing piece
    /// if the boundary does not exist yet.
    fn crack_at(&mut self, v: f64, depth: usize) -> usize {
        // Existing boundary?
        match self.bounds.binary_search_by(|(bv, _)| bv.total_cmp(&v)) {
            Ok(i) => self.bounds[i].1,
            Err(i) => {
                let piece_lo = if i == 0 { 0 } else { self.bounds[i - 1].1 };
                let piece_hi = if i == self.bounds.len() {
                    self.items.len()
                } else {
                    self.bounds[i].1
                };
                let split = piece_lo + partition(&mut self.items[piece_lo..piece_hi], v);
                self.stats.cracks += 1;
                self.stats.touched += (piece_hi - piece_lo) as u64;
                self.bounds.insert(i, (v, split));

                // Stochastic DDC: keep halving oversized neighbours at their
                // value-domain centers so no piece stays O(n) forever.
                if let CrackEngine::Stochastic { threshold } = self.engine {
                    if depth < 64 {
                        for (plo, phi) in [(piece_lo, split), (split, piece_hi)] {
                            if phi - plo > threshold {
                                if let Some(mid) = value_center(&self.items[plo..phi]) {
                                    if mid != v {
                                        self.crack_at(mid, depth + 1);
                                    }
                                }
                            }
                        }
                    }
                }
                // Position may have shifted if recursive cracks inserted
                // boundaries; re-resolve.
                match self.bounds.binary_search_by(|(bv, _)| bv.total_cmp(&v)) {
                    Ok(j) => self.bounds[j].1,
                    Err(_) => unreachable!("boundary just inserted"),
                }
            }
        }
    }

    /// Verifies the cracker invariant: each boundary separates the keys.
    pub fn validate(&self) -> Result<(), String> {
        let mut prev_pos = 0usize;
        let mut prev_val = f64::NEG_INFINITY;
        for &(v, p) in &self.bounds {
            if p < prev_pos {
                return Err(format!("positions not monotone at boundary {v}"));
            }
            if v <= prev_val {
                return Err(format!("boundary values not increasing at {v}"));
            }
            for &(k, _) in &self.items[prev_pos..p] {
                if k >= v {
                    return Err(format!("key {k} >= boundary {v} on the left side"));
                }
                if k < prev_val {
                    return Err(format!("key {k} < previous boundary {prev_val}"));
                }
            }
            prev_pos = p;
            prev_val = v;
        }
        for &(k, _) in &self.items[prev_pos..] {
            if k < prev_val {
                return Err(format!("tail key {k} < last boundary {prev_val}"));
            }
        }
        Ok(())
    }
}

/// Hoare partition by `key < v`; returns the split offset.
fn partition(piece: &mut [(f64, u64)], v: f64) -> usize {
    let mut i = 0usize;
    let mut j = piece.len();
    loop {
        while i < j && piece[i].0 < v {
            i += 1;
        }
        while i < j && piece[j - 1].0 >= v {
            j -= 1;
        }
        if i + 1 >= j {
            break;
        }
        piece.swap(i, j - 1);
        i += 1;
        j -= 1;
    }
    i
}

/// Center of a piece's value domain, `None` when indivisible.
fn value_center(piece: &[(f64, u64)]) -> Option<f64> {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &(k, _) in piece {
        min = min.min(k);
        max = max.max(k);
    }
    let mid = 0.5 * (min + max);
    (mid > min && mid.is_finite()).then_some(mid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_keys(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.random_range(0.0..1000.0)).collect()
    }

    fn brute(keys: &[f64], lo: f64, hi: f64) -> Vec<u64> {
        let mut out: Vec<u64> = keys
            .iter()
            .enumerate()
            .filter(|(_, &k)| k >= lo && k < hi)
            .map(|(i, _)| i as u64)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn standard_cracking_answers_correctly() {
        let keys = random_keys(5_000, 1);
        let mut col = CrackerColumn::from_keys(keys.iter().copied(), CrackEngine::Standard);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let lo: f64 = rng.random_range(0.0..900.0);
            let hi = lo + rng.random_range(0.0..100.0);
            let mut got = col.range_query_collect(lo, hi);
            got.sort_unstable();
            assert_eq!(got, brute(&keys, lo, hi));
            col.validate().unwrap();
        }
        assert!(col.crack_count() > 100);
    }

    #[test]
    fn repeated_query_cracks_once() {
        let keys = random_keys(2_000, 3);
        let mut col = CrackerColumn::from_keys(keys, CrackEngine::Standard);
        col.range_query_collect(100.0, 200.0);
        let cracks = col.stats().cracks;
        for _ in 0..5 {
            col.range_query_collect(100.0, 200.0);
        }
        assert_eq!(col.stats().cracks, cracks);
    }

    #[test]
    fn converges_to_sorted_under_many_queries() {
        let keys = random_keys(1_000, 5);
        let mut col = CrackerColumn::from_keys(keys, CrackEngine::Standard);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..800 {
            let lo: f64 = rng.random_range(0.0..999.0);
            col.range_query_collect(lo, lo + 1.0);
        }
        col.validate().unwrap();
        // Pieces shrink dramatically: the array is near-sorted.
        assert!(
            col.largest_piece() < 100,
            "largest piece {} after 800 queries",
            col.largest_piece()
        );
    }

    #[test]
    fn sequential_pattern_hurts_standard_but_not_stochastic() {
        // The classic adversarial case from Halim et al.: strictly
        // sequential ranges leave standard cracking with one giant
        // un-cracked tail piece that every query re-scans.
        let n = 20_000;
        let keys = random_keys(n, 7);
        let mut standard = CrackerColumn::from_keys(keys.iter().copied(), CrackEngine::Standard);
        let mut stochastic = CrackerColumn::from_keys(
            keys.iter().copied(),
            CrackEngine::Stochastic { threshold: 256 },
        );
        for step in 0..50 {
            let lo = step as f64 * 2.0;
            standard.range_query_collect(lo, lo + 2.0);
            stochastic.range_query_collect(lo, lo + 2.0);
        }
        standard.validate().unwrap();
        stochastic.validate().unwrap();
        assert!(
            standard.largest_piece() > n / 2,
            "sequential pattern must leave standard cracking a huge tail: {}",
            standard.largest_piece()
        );
        assert!(
            stochastic.largest_piece() <= 512,
            "DDC must bound piece sizes: {}",
            stochastic.largest_piece()
        );
        // And stochastic stays correct.
        let mut got = stochastic.range_query_collect(40.0, 60.0);
        got.sort_unstable();
        assert_eq!(got, brute(&keys, 40.0, 60.0));
    }

    #[test]
    fn duplicate_keys_and_degenerate_ranges() {
        let keys = vec![5.0; 100];
        let mut col = CrackerColumn::from_keys(keys, CrackEngine::Stochastic { threshold: 4 });
        assert_eq!(col.range_query_collect(5.0, 5.1).len(), 100);
        assert!(col.range_query_collect(5.1, 5.0).is_empty(), "inverted");
        assert!(col.range_query_collect(6.0, 7.0).is_empty());
        col.validate().unwrap();
    }

    #[test]
    fn empty_column() {
        let mut col = CrackerColumn::new(Vec::new(), CrackEngine::Standard);
        assert!(col.is_empty());
        assert!(col.range_query_collect(0.0, 1.0).is_empty());
        assert_eq!(col.largest_piece(), 0);
    }

    #[test]
    fn row_ids_follow_their_keys() {
        let keys = vec![30.0, 10.0, 20.0, 40.0];
        let mut col = CrackerColumn::from_keys(keys, CrackEngine::Standard);
        let mut got = col.range_query_collect(15.0, 35.0);
        got.sort_unstable();
        assert_eq!(got, vec![0, 2]);
    }
}
