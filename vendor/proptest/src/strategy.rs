//! Value-generation strategies. A [`Strategy`] deterministically samples a
//! value from a [`TestRng`]; no shrinking is implemented (see crate docs).

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// Generates values of `Self::Value` for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value through `f` (mirrors `Strategy::prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of the given value (`Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // The affine map can round up to `end` itself; keep the half-open
        // contract by stepping back one ulp in that case.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 strategy range");
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_int_strategy {
    ($($t:ty as $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_int_strategy!(i32 as u32, i64 as u64, isize as usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
