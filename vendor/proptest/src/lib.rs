//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be fetched. This shim keeps the same surface — the `proptest!`
//! macro, `Strategy` + `prop_map`, range and tuple strategies,
//! `prop::collection::vec`, `ProptestConfig`, `TestCaseError`, and the
//! `prop_assert*` / `prop_assume!` macros — so the real dependency can be
//! swapped back in without touching the test files.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its case index and its
//!   deterministic seed instead of a minimized counterexample;
//! * **deterministic by default** — case `i` of test `t` always uses the
//!   same seed (derived from `t` and `i` by FNV-1a), so failures reproduce
//!   exactly across runs and machines;
//! * the number of cases is `ProptestConfig::cases`, overridable globally
//!   with the `PROPTEST_CASES` environment variable (same variable the real
//!   crate honors) — CI can dial suites up or down without code edits;
//! * rejected cases (`prop_assume!`) do not count towards the case budget,
//!   and more than `16 × cases` rejections abort the test (a coarser
//!   version of real proptest's `max_global_rejects`).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Mirror of the `prop` module re-export in the real prelude
    /// (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests. Mirrors `proptest::proptest!`:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0.0..1.0f64, v in prop::collection::vec(0u64..10, 1..5)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let cases = config.resolved_cases();
                // Like real proptest, rejected cases (prop_assume!) do not
                // count towards the case budget, and too many rejections
                // abort instead of passing near-vacuously.
                let max_rejects = cases.saturating_mul(16).max(1024);
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while accepted < cases {
                    let seed = $crate::test_runner::case_seed(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    case += 1;
                    let mut __rng = $crate::test_runner::TestRng::from_seed(seed);
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                        // Run the body in a closure so `?` and the
                        // prop_assert*/prop_assume! early returns work.
                        let mut __run = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        };
                        __run()
                    };
                    match __outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(reason)) => {
                            rejected += 1;
                            if rejected > max_rejects {
                                panic!(
                                    "proptest {} gave up: {rejected} rejected cases for {accepted}/{cases} accepted (last: {reason})",
                                    stringify!($name),
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(reason)) => {
                            panic!(
                                "proptest case {accepted}/{cases} of {} failed (seed {seed:#x}): {reason}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`\n {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// `prop_assume!(cond)` — skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
