//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// Inclusive-exclusive length bounds for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            return self.lo;
        }
        self.lo + (rng.next_u64() % (self.hi - self.lo) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length falls in `size` (mirrors
/// `proptest::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
