//! Test-runner types: configuration, failure/rejection reporting, and the
//! deterministic per-case RNG.

use std::fmt;

/// Per-suite configuration (mirrors `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs. Overridable globally with the
    /// `PROPTEST_CASES` environment variable.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// Cases to actually run: `PROPTEST_CASES` env var wins when set (so CI
    /// can dial every suite up or down), otherwise `self.cases`.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property failed.
    Fail(Reason),
    /// The case was rejected by `prop_assume!` — not a failure.
    Reject(Reason),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<Reason>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection (skipped case) with the given reason.
    pub fn reject(reason: impl Into<Reason>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

/// Human-readable cause attached to a [`TestCaseError`].
#[derive(Clone, Debug)]
pub struct Reason(String);

impl fmt::Display for Reason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for Reason {
    fn from(s: String) -> Self {
        Reason(s)
    }
}

impl From<&str> for Reason {
    fn from(s: &str) -> Self {
        Reason(s.to_string())
    }
}

/// Derives the deterministic seed for case `case` of the test named `name`
/// (FNV-1a over the name, mixed with the case index).
pub fn case_seed(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Deterministic per-case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the generator from a seed (see [`case_seed`]).
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = case_seed("mod::prop_a", 0);
        assert_eq!(a, case_seed("mod::prop_a", 0));
        assert_ne!(a, case_seed("mod::prop_a", 1));
        assert_ne!(a, case_seed("mod::prop_b", 0));
    }
}
