//! Minimal zero-dependency HTTP/1.1 over blocking streams — the vendored
//! shim `crates/server` fronts the engine with (same offline policy as
//! `vendor/rand`/`vendor/proptest`: the build environment has no crates.io
//! access, so the workspace carries a small `std`-only implementation
//! instead of a registry dependency).
//!
//! Scope is deliberately tiny — exactly what the query service needs:
//!
//! * [`read_request`]: a **bounded** request parser over any [`BufRead`].
//!   Every limit violation (request line / header line / header count /
//!   body size) is a *named* [`HttpError`] variant carrying the limit, so
//!   the server can answer 413/414/431 instead of panicking or buffering
//!   without bound.
//! * [`Response`]: a status + body writer with keep-alive support.
//! * [`Client`]: a keep-alive client over one [`TcpStream`] (used by the
//!   load generator, the `repro service` experiment and `tests/server.rs`).
//!
//! Not supported (and not needed here): chunked transfer encoding, TLS,
//! HTTP/2, multipart, percent-decoding, trailers. Requests with a
//! `Transfer-Encoding` header are rejected as unsupported rather than
//! mis-framed.

#![warn(missing_docs)]

use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Parser bounds. Every limit violation maps to a named [`HttpError`]
/// variant (and from there to a 4xx status), never a panic or an
/// unbounded buffer.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum request-line length in bytes (method + target + version).
    pub max_request_line: usize,
    /// Maximum length of one header line in bytes.
    pub max_header_line: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum declared body size in bytes.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_headers: 64,
            max_body: 1 << 20,
        }
    }
}

/// Everything that can go wrong reading a request or a client response.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying transport error (no response is possible).
    Io(io::Error),
    /// The peer closed the connection mid-message.
    Truncated,
    /// Request line exceeded [`Limits::max_request_line`] (→ 414).
    RequestLineTooLong {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// A header line exceeded [`Limits::max_header_line`] (→ 431).
    HeaderLineTooLong {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// More than [`Limits::max_headers`] header lines (→ 431).
    TooManyHeaders {
        /// The configured limit.
        limit: usize,
    },
    /// Declared `Content-Length` exceeds [`Limits::max_body`] (→ 413).
    BodyTooLarge {
        /// The declared body length.
        length: usize,
        /// The configured limit in bytes.
        limit: usize,
    },
    /// Malformed request line (→ 400).
    BadRequestLine(String),
    /// Malformed header line (→ 400).
    BadHeader(String),
    /// Unparsable `Content-Length` value (→ 400).
    BadContentLength(String),
    /// Only HTTP/1.0 and HTTP/1.1 are spoken (→ 400).
    UnsupportedVersion(String),
    /// `Transfer-Encoding` framing is out of scope for this shim (→ 400).
    UnsupportedTransferEncoding,
    /// Malformed status line in a client-side response (client only).
    BadStatusLine(String),
}

impl HttpError {
    /// The HTTP status this error should be answered with, or `None` when
    /// the connection is beyond responding (I/O error, truncation).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Io(_) | HttpError::Truncated => None,
            HttpError::RequestLineTooLong { .. } => Some(414),
            HttpError::HeaderLineTooLong { .. } | HttpError::TooManyHeaders { .. } => Some(431),
            HttpError::BodyTooLarge { .. } => Some(413),
            HttpError::BadRequestLine(_)
            | HttpError::BadHeader(_)
            | HttpError::BadContentLength(_)
            | HttpError::UnsupportedVersion(_)
            | HttpError::UnsupportedTransferEncoding
            | HttpError::BadStatusLine(_) => Some(400),
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Truncated => write!(f, "connection closed mid-message"),
            HttpError::RequestLineTooLong { limit } => {
                write!(f, "request line exceeds {limit} bytes")
            }
            HttpError::HeaderLineTooLong { limit } => {
                write!(f, "header line exceeds {limit} bytes")
            }
            HttpError::TooManyHeaders { limit } => write!(f, "more than {limit} header lines"),
            HttpError::BodyTooLarge { length, limit } => {
                write!(
                    f,
                    "declared body of {length} bytes exceeds the {limit}-byte limit"
                )
            }
            HttpError::BadRequestLine(l) => write!(f, "malformed request line '{l}'"),
            HttpError::BadHeader(l) => write!(f, "malformed header line '{l}'"),
            HttpError::BadContentLength(v) => write!(f, "bad Content-Length '{v}'"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported HTTP version '{v}'"),
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding is not supported (use Content-Length)")
            }
            HttpError::BadStatusLine(l) => write!(f, "malformed status line '{l}'"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request. Header names are lowercased at parse time.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The raw request target (path plus optional `?query`).
    pub target: String,
    /// Header pairs in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The target's path component (before any `?`).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// The target's raw query string (after `?`), or `""`.
    pub fn query(&self) -> &str {
        self.target.split_once('?').map(|(_, q)| q).unwrap_or("")
    }

    /// The first value of query parameter `key` (no percent-decoding —
    /// the service's wire format never needs it).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query().split('&').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// The first value of header `name` (lowercase lookup).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Reads one `\n`-terminated line with a hard byte bound. Returns
/// `Ok(None)` on clean EOF before any byte, `Err(true)` when the bound was
/// exceeded, `Err(false)` on truncation mid-line.
fn read_line_bounded<R: BufRead>(
    r: &mut R,
    limit: usize,
) -> Result<Result<Option<Vec<u8>>, bool>, io::Error> {
    let mut line = Vec::new();
    // `take` enforces the bound *while* reading, so a hostile peer cannot
    // make us buffer an arbitrarily long line before we notice.
    let n = r.take(limit as u64 + 1).read_until(b'\n', &mut line)?;
    if n == 0 {
        return Ok(Ok(None));
    }
    if line.last() != Some(&b'\n') {
        return Ok(Err(line.len() > limit));
    }
    line.pop();
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    if line.len() > limit {
        return Ok(Err(true));
    }
    Ok(Ok(Some(line)))
}

fn utf8_line(bytes: Vec<u8>, what: fn(String) -> HttpError) -> Result<String, HttpError> {
    String::from_utf8(bytes).map_err(|e| what(format!("<{} non-utf8 bytes>", e.as_bytes().len())))
}

/// Reads and parses one request from `r`. Returns `Ok(None)` when the
/// peer closed the connection cleanly between requests (the keep-alive
/// loop's normal exit).
pub fn read_request<R: BufRead>(r: &mut R, limits: &Limits) -> Result<Option<Request>, HttpError> {
    let line = match read_line_bounded(r, limits.max_request_line)? {
        Ok(None) => return Ok(None),
        Ok(Some(l)) => l,
        Err(true) => {
            return Err(HttpError::RequestLineTooLong {
                limit: limits.max_request_line,
            })
        }
        Err(false) => return Err(HttpError::Truncated),
    };
    let line = utf8_line(line, HttpError::BadRequestLine)?;
    let mut parts = line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_string(), t.to_string(), v),
        _ => return Err(HttpError::BadRequestLine(line.clone())),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion(version.to_string()));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line_bounded(r, limits.max_header_line)? {
            Ok(None) => return Err(HttpError::Truncated),
            Ok(Some(l)) => l,
            Err(true) => {
                return Err(HttpError::HeaderLineTooLong {
                    limit: limits.max_header_line,
                })
            }
            Err(false) => return Err(HttpError::Truncated),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders {
                limit: limits.max_headers,
            });
        }
        let line = utf8_line(line, HttpError::BadHeader)?;
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(line.clone()))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let mut body = Vec::new();
    if let Some((_, v)) = headers.iter().find(|(k, _)| k == "content-length") {
        let length: usize = v
            .parse()
            .map_err(|_| HttpError::BadContentLength(v.clone()))?;
        if length > limits.max_body {
            return Err(HttpError::BodyTooLarge {
                length,
                limit: limits.max_body,
            });
        }
        body.resize(length, 0);
        r.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::Truncated
            } else {
                HttpError::Io(e)
            }
        })?;
    }

    Ok(Some(Request {
        method,
        target,
        headers,
        body,
    }))
}

/// The reason phrase for the status codes the service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// One response: status, content type, body, and whether to close the
/// connection after writing.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// `true` → `Connection: close` (and the server drops the stream).
    pub close: bool,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            close: false,
        }
    }

    /// An `application/json` response (the caller supplies valid JSON).
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            close: false,
        }
    }

    /// Marks the response connection-closing.
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    /// Serializes the response onto `w` (one `write_all` of a prebuilt
    /// buffer, so a response is never interleaved or torn by buffering).
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        );
        let mut buf = Vec::with_capacity(head.len() + self.body.len());
        buf.extend_from_slice(head.as_bytes());
        buf.extend_from_slice(&self.body);
        w.write_all(&buf)?;
        w.flush()
    }
}

/// A client-side response.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy — service bodies are always UTF-8).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive HTTP/1.1 client over one [`TcpStream`] — enough for the
/// load generator and the test suites; not a general-purpose client.
pub struct Client {
    reader: BufReader<TcpStream>,
    limits: Limits,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream),
            limits: Limits {
                // Scrapes of /metrics can exceed the server-side request
                // bound; responses are trusted, so the client reads more.
                max_body: 64 << 20,
                ..Limits::default()
            },
        })
    }

    /// Issues `GET target`.
    pub fn get(&mut self, target: &str) -> Result<ClientResponse, HttpError> {
        self.roundtrip("GET", target, "", &[])
    }

    /// Issues `POST target` with `body`.
    pub fn post(
        &mut self,
        target: &str,
        content_type: &str,
        body: &[u8],
    ) -> Result<ClientResponse, HttpError> {
        self.roundtrip("POST", target, content_type, body)
    }

    /// Issues an arbitrary-method request (tests exercising 405 paths).
    pub fn roundtrip(
        &mut self,
        method: &str,
        target: &str,
        content_type: &str,
        body: &[u8],
    ) -> Result<ClientResponse, HttpError> {
        let mut head = format!("{method} {target} HTTP/1.1\r\nHost: quasii\r\n");
        if !body.is_empty() || method == "POST" {
            head.push_str(&format!(
                "Content-Type: {content_type}\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        let mut buf = Vec::with_capacity(head.len() + body.len());
        buf.extend_from_slice(head.as_bytes());
        buf.extend_from_slice(body);
        let stream = self.reader.get_mut();
        stream.write_all(&buf)?;
        stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<ClientResponse, HttpError> {
        let line = match read_line_bounded(&mut self.reader, self.limits.max_request_line)? {
            Ok(None) => return Err(HttpError::Truncated),
            Ok(Some(l)) => l,
            Err(_) => return Err(HttpError::Truncated),
        };
        let line = utf8_line(line, HttpError::BadStatusLine)?;
        let mut parts = line.split_ascii_whitespace();
        let (version, status) = match (parts.next(), parts.next()) {
            (Some(v), Some(s)) => (v, s),
            _ => return Err(HttpError::BadStatusLine(line.clone())),
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::UnsupportedVersion(version.to_string()));
        }
        let status: u16 = status
            .parse()
            .map_err(|_| HttpError::BadStatusLine(line.clone()))?;

        let mut content_length = 0usize;
        loop {
            let line = match read_line_bounded(&mut self.reader, self.limits.max_header_line)? {
                Ok(None) => return Err(HttpError::Truncated),
                Ok(Some(l)) => l,
                Err(_) => return Err(HttpError::Truncated),
            };
            if line.is_empty() {
                break;
            }
            let line = utf8_line(line, HttpError::BadHeader)?;
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| HttpError::BadContentLength(value.trim().to_string()))?;
                }
            }
        }
        if content_length > self.limits.max_body {
            return Err(HttpError::BodyTooLarge {
                length: content_length,
                limit: self.limits.max_body,
            });
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                HttpError::Truncated
            } else {
                HttpError::Io(e)
            }
        })?;
        Ok(ClientResponse { status, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes()), &Limits::default())
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse("GET /query?lo=1,2,3&hi=4,5,6 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/query");
        assert_eq!(req.query_param("lo"), Some("1,2,3"));
        assert_eq!(req.query_param("hi"), Some("4,5,6"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_post_with_body_and_close() {
        let req = parse(
            "POST /batch HTTP/1.1\r\nContent-Length: 11\r\nConnection: close\r\n\r\n0,0,0,1,1,1",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"0,0,0,1,1,1");
        assert!(req.wants_close());
        assert_eq!(req.header("content-length"), Some("11"));
    }

    #[test]
    fn clean_eof_is_none_not_error() {
        assert!(parse("").unwrap().is_none());
    }

    #[test]
    fn named_limit_errors() {
        let limits = Limits {
            max_request_line: 32,
            max_header_line: 32,
            max_headers: 2,
            max_body: 16,
        };
        let over_uri = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64));
        let err = read_request(&mut Cursor::new(over_uri.as_bytes()), &limits).unwrap_err();
        assert!(matches!(err, HttpError::RequestLineTooLong { limit: 32 }));
        assert_eq!(err.status(), Some(414));

        let big_header = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "y".repeat(64));
        let err = read_request(&mut Cursor::new(big_header.as_bytes()), &limits).unwrap_err();
        assert!(matches!(err, HttpError::HeaderLineTooLong { limit: 32 }));
        assert_eq!(err.status(), Some(431));

        let many = "GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
        let err = read_request(&mut Cursor::new(many.as_bytes()), &limits).unwrap_err();
        assert!(matches!(err, HttpError::TooManyHeaders { limit: 2 }));

        let big_body = "POST / HTTP/1.1\r\nContent-Length: 1000\r\n\r\n";
        let err = read_request(&mut Cursor::new(big_body.as_bytes()), &limits).unwrap_err();
        assert!(matches!(
            err,
            HttpError::BodyTooLarge {
                length: 1000,
                limit: 16
            }
        ));
        assert_eq!(err.status(), Some(413));
    }

    #[test]
    fn malformed_lines_are_named_errors() {
        assert!(matches!(
            parse("GARBAGE\r\n\r\n").unwrap_err(),
            HttpError::BadRequestLine(_)
        ));
        assert!(matches!(
            parse("GET / HTTP/3.0\r\n\r\n").unwrap_err(),
            HttpError::UnsupportedVersion(_)
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").unwrap_err(),
            HttpError::BadHeader(_)
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n").unwrap_err(),
            HttpError::BadContentLength(_)
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err(),
            HttpError::UnsupportedTransferEncoding
        ));
        // Truncation mid-request (header block never terminated).
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nHost: x\r\n").unwrap_err(),
            HttpError::Truncated
        ));
        // Truncation mid-body.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").unwrap_err(),
            HttpError::Truncated
        ));
    }

    #[test]
    fn response_round_trips_over_loopback() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            // Two keep-alive exchanges, then the client closes.
            for i in 0..2 {
                let req = read_request(&mut reader, &Limits::default())
                    .unwrap()
                    .unwrap();
                assert_eq!(req.method, if i == 0 { "GET" } else { "POST" });
                Response::json(200, format!("{{\"i\":{i}}}"))
                    .write_to(&mut writer)
                    .unwrap();
            }
            assert!(read_request(&mut reader, &Limits::default())
                .unwrap()
                .is_none());
        });
        let mut client = Client::connect(addr).unwrap();
        let r = client.get("/x").unwrap();
        assert_eq!((r.status, r.text().as_str()), (200, "{\"i\":0}"));
        let r = client.post("/y", "text/plain", b"payload").unwrap();
        assert_eq!((r.status, r.text().as_str()), (200, "{\"i\":1}"));
        drop(client);
        server.join().unwrap();
    }

    #[test]
    fn keep_alive_parses_pipelined_requests() {
        let raw = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut cur = Cursor::new(raw.as_bytes());
        let limits = Limits::default();
        assert_eq!(
            read_request(&mut cur, &limits).unwrap().unwrap().target,
            "/a"
        );
        assert_eq!(
            read_request(&mut cur, &limits).unwrap().unwrap().target,
            "/b"
        );
        assert!(read_request(&mut cur, &limits).unwrap().is_none());
    }
}
