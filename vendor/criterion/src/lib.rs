//! Offline stand-in for the subset of `criterion` this workspace's benches
//! use. The build environment has no access to crates.io, so the real crate
//! cannot be fetched; this shim keeps the same macro and method surface
//! (`criterion_group!`/`criterion_main!`, benchmark groups, `iter`,
//! `iter_batched`, `iter_batched_ref`) so the benches compile and run
//! unchanged.
//!
//! Measurement is intentionally simple: each benchmark runs
//! `sample_size` timed samples after one warm-up and reports
//! min / median / mean wall-clock per iteration on stdout. There is no
//! statistical analysis, HTML report, or outlier rejection — swap the real
//! crate back in for publishable numbers. Set `CRITERION_QUICK=1` to run a
//! single sample per benchmark (used by smoke tests).

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim runs one routine call
/// per batch regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (e.g. a cloned dataset).
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Collects per-sample durations for one benchmark.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` for `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine()); // warm-up
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.durations.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup is untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.durations.push(t.elapsed());
        }
    }

    /// Like [`iter_batched`](Self::iter_batched) but hands the routine a
    /// mutable reference to the input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.samples {
            let mut input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(&mut input));
            self.durations.push(t.elapsed());
        }
    }

    fn report(&mut self, id: &str) {
        if self.durations.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.durations.sort();
        let min = self.durations[0];
        let median = self.durations[self.durations.len() / 2];
        let mean = self.durations.iter().sum::<Duration>() / self.durations.len() as u32;
        println!(
            "{id:<40} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            self.durations.len()
        );
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1")
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let samples = if quick_mode() { 1 } else { samples.max(1) };
    let mut b = Bencher::new(samples);
    f(&mut b);
    b.report(id);
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
