//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses (`StdRng`, `Rng::random`/`random_range`, `SeedableRng::seed_from_u64`,
//! `distr::{Distribution, Uniform}`).
//!
//! The build environment has no access to crates.io, so the real crate
//! cannot be fetched; this shim keeps the exact module paths and method
//! names so swapping the real dependency back in is a one-line change in
//! the workspace manifest. The generator is SplitMix64 — statistically fine
//! for synthetic datasets and tests, but **not** the real `StdRng` (ChaCha12)
//! and not cryptographically secure.

pub mod distr;
pub mod rngs;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`Rng::random`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // `start + u*(end-start)` can round up to `end` itself; keep the
        // half-open contract by stepping back one ulp in that case.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range_impls!(u64, u32, u16, u8, usize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = a.random_range(2.0..5.0);
            let y: f64 = b.random_range(2.0..5.0);
            assert_eq!(x, y);
            assert!((2.0..5.0).contains(&x));
            let n = a.random_range(0usize..3);
            b.random_range(0usize..3);
            assert!(n < 3);
        }
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
