//! Distributions (`rand::distr` in rand 0.9). Only the uniform `f64`
//! distribution is provided — the one the workspace uses.

use crate::{RngCore, SampleRange};
use std::fmt;

/// Error constructing a distribution (e.g. an empty uniform range).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid distribution parameters (empty range?)")
    }
}

impl std::error::Error for Error {}

/// Types that produce values of `T` when sampled.
pub trait Distribution<T> {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution over an interval.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
    inclusive: bool,
}

impl Uniform<f64> {
    /// Uniform over the half-open interval `[lo, hi)`.
    pub fn new(lo: f64, hi: f64) -> Result<Self, Error> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(Error);
        }
        Ok(Self {
            lo,
            hi,
            inclusive: false,
        })
    }

    /// Uniform over the closed interval `[lo, hi]`.
    pub fn new_inclusive(lo: f64, hi: f64) -> Result<Self, Error> {
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(Error);
        }
        Ok(Self {
            lo,
            hi,
            inclusive: true,
        })
    }
}

impl Distribution<f64> for Uniform<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.inclusive {
            (self.lo..=self.hi).sample_one(rng)
        } else {
            (self.lo..self.hi).sample_one(rng)
        }
    }
}
