//! Concrete generators. `StdRng` here is SplitMix64, not ChaCha12 — see the
//! crate-level note.

use crate::{RngCore, SeedableRng};

/// Deterministic 64-bit generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    #[inline]
    fn seed_from_u64(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
